"""Correctness tests shared by every registered counter.

Every counter must agree with the brute-force reference after *every* update of
randomized fully dynamic streams, on several workload shapes.  These are the
library's most important tests: the paper's contribution is an exact counting
algorithm, so exactness (not approximation) is the invariant.
"""

from __future__ import annotations

import pytest

from repro.api import available_counter_names, counter_spec
from repro.graph.static_counts import count_four_cycles_trace
from repro.graph.updates import UpdateStream
from repro.instrumentation.harness import run_validated
from repro.workloads.generators import (
    complete_bipartite_stream,
    erdos_renyi_stream,
    hub_adversarial_stream,
    power_law_stream,
    sliding_window_stream,
)

from tests.conftest import complete_bipartite_edges, expected_bipartite_cycles, random_dynamic_stream

ALL_COUNTERS = sorted(available_counter_names())


@pytest.mark.parametrize("name", ALL_COUNTERS)
class TestAgainstBruteForce:
    def test_random_stream_small(self, name):
        stream = random_dynamic_stream(num_vertices=10, num_updates=100, seed=1)
        result = run_validated(counter_spec(name).create(), stream)
        assert result.validated

    def test_random_stream_denser(self, name):
        stream = random_dynamic_stream(num_vertices=9, num_updates=140, seed=2, delete_fraction=0.4)
        result = run_validated(counter_spec(name).create(), stream)
        assert result.validated

    def test_erdos_renyi_workload(self, name):
        stream = erdos_renyi_stream(num_vertices=16, num_updates=130, seed=3)
        assert run_validated(counter_spec(name).create(), stream).validated

    def test_power_law_workload(self, name):
        stream = power_law_stream(num_vertices=18, num_updates=130, seed=4)
        assert run_validated(counter_spec(name).create(), stream).validated

    def test_hub_adversarial_workload(self, name):
        """Hubs force vertices into the high/dense classes and across them."""
        stream = hub_adversarial_stream(num_vertices=18, num_updates=140, num_hubs=2, seed=5)
        assert run_validated(counter_spec(name).create(), stream).validated

    def test_sliding_window_workload(self, name):
        stream = sliding_window_stream(num_vertices=14, num_insertions=80, window_size=25, seed=6)
        assert run_validated(counter_spec(name).create(), stream).validated

    def test_complete_bipartite_closed_form(self, name):
        counter = counter_spec(name).create()
        counter.apply_all(complete_bipartite_stream(4, 5))
        assert counter.count == expected_bipartite_cycles(4, 5)

    def test_teardown_to_empty(self, name):
        counter = counter_spec(name).create()
        stream = UpdateStream.build_then_teardown(complete_bipartite_edges(3, 4))
        counter.apply_all(stream)
        assert counter.count == 0

    def test_final_count_matches_static_recount(self, name):
        stream = random_dynamic_stream(num_vertices=12, num_updates=90, seed=8)
        counter = counter_spec(name).create()
        counter.apply_all(stream)
        assert counter.count == count_four_cycles_trace(counter.graph)
