"""Incremental wedge batch hook versus the full rebuild.

The contract: forcing the hook to merge ``ΔW = ΔA·A_new + A_old·ΔA``
(``incremental=True``), forcing full rebuilds (``incremental=False``), and
letting the cost model choose (``incremental=None``) must all produce the
*identical* count trajectory at every batch boundary, for any consistent
stream — and every boundary state must survive a from-scratch recount and
match the wedge matrix a per-update replay maintains.
"""

from __future__ import annotations

import pytest

from repro.core.wedge_counter import WedgeCounter
from repro.graph.updates import EdgeUpdate

from tests.conftest import random_dynamic_stream

STREAM_LENGTH = 320
BATCH_SIZES = (1, 7, 64, 256)
MODES = {"full": False, "incremental": True, "auto": None}


def boundary_indices(total: int, batch_size: int) -> list[int]:
    return [min(start + batch_size, total) - 1 for start in range(0, total, batch_size)]


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_incremental_matches_full_rebuild_trajectories(seed):
    stream = random_dynamic_stream(
        num_vertices=18, num_updates=STREAM_LENGTH, seed=seed, delete_fraction=0.35
    )
    reference = WedgeCounter()
    trajectory = [reference.apply(update) for update in stream]
    for batch_size in BATCH_SIZES:
        expected = [trajectory[i] for i in boundary_indices(len(stream), batch_size)]
        for mode_name, incremental in MODES.items():
            counter = WedgeCounter(incremental=incremental)
            boundary_counts = [
                counter.apply_batch(window) for window in stream.batched(batch_size)
            ]
            assert boundary_counts == expected, (
                f"wedge {mode_name} diverged at batch size {batch_size} (seed {seed})"
            )
            assert counter.is_consistent()
            assert counter.graph.to_edge_set() == reference.graph.to_edge_set()
            # The maintained all-pairs wedge structure itself must match the
            # per-update reference, not just the count.
            assert counter.wedge_matrix == reference.wedge_matrix


@pytest.mark.parametrize("incremental", [True, None])
def test_incremental_handles_pure_deletion_batches(incremental):
    """Deletion-only windows exercise negative ΔA and entry cancellation."""
    edges = [(u, v) for u in range(10) for v in range(u + 1, 10)]
    counter = WedgeCounter(incremental=incremental)
    counter.apply_batch([EdgeUpdate.insert(u, v) for u, v in edges])
    full = WedgeCounter()
    for u, v in edges:
        full.insert_edge(u, v)
    assert counter.count == full.count
    removed = edges[::3]
    counter.apply_batch([EdgeUpdate.delete(u, v) for u, v in removed])
    for u, v in removed:
        full.delete_edge(u, v)
    assert counter.count == full.count
    assert counter.is_consistent()
    assert counter.wedge_matrix == full.wedge_matrix


def test_incremental_batch_with_new_vertices():
    """Vertices first interned mid-batch must flow through the ΔA export."""
    counter = WedgeCounter(incremental=True)
    counter.apply_batch([EdgeUpdate.insert(i, i + 1) for i in range(40)])
    counter.apply_batch(
        [EdgeUpdate.insert(100 + i, i) for i in range(40)]
        + [EdgeUpdate.insert(100 + i, i + 1) for i in range(40)]
    )
    assert counter.is_consistent()


def test_forced_modes_are_exposed_via_the_spec():
    from repro.api import EngineConfig, FourCycleEngine

    engine = FourCycleEngine(
        EngineConfig(counter="wedge", options={"incremental": True}, batch_size=64)
    )
    assert engine.counter.incremental is True
    engine = FourCycleEngine(EngineConfig(counter="wedge"))
    assert engine.counter.incremental is None


def test_backend_option_reaches_the_dispatcher():
    from repro.api import EngineConfig, FourCycleEngine
    from repro.exceptions import ConfigurationError

    engine = FourCycleEngine(EngineConfig(counter="wedge", backend="csr"))
    assert engine.counter.matmul_backend == "csr"
    with pytest.raises(ConfigurationError):
        EngineConfig(counter="wedge", backend="quantum")


@pytest.mark.parametrize("backend", ["dense", "csr"])
def test_backends_produce_identical_batch_trajectories(backend):
    stream = random_dynamic_stream(
        num_vertices=16, num_updates=256, seed=5, delete_fraction=0.3
    )
    reference = WedgeCounter(backend="dense")
    pinned = WedgeCounter(backend=backend)
    expected = [reference.apply_batch(w) for w in stream.batched(64)]
    actual = [pinned.apply_batch(w) for w in stream.batched(64)]
    assert actual == expected
    assert pinned.is_consistent()
