"""Tests for the 3-path oracles (naive and phase/FMM) and the oracle-backed counter."""

from __future__ import annotations

import random

import pytest

from repro.core.oracles import (
    NaiveThreePathOracle,
    OracleBackedCounter,
    PhaseThreePathOracle,
)
from repro.exceptions import ConfigurationError, InvalidUpdateError
from repro.instrumentation.harness import run_validated

from tests.conftest import random_dynamic_stream


def drive_oracle_randomly(oracle, seed: int, steps: int = 250, domain: int = 9) -> None:
    """Apply random consistent chain updates, validating every query."""
    rng = random.Random(seed)
    live = {1: set(), 2: set(), 3: set()}
    for step in range(steps):
        position = rng.choice((1, 2, 3))
        if live[position] and rng.random() < 0.35:
            left, right = rng.choice(sorted(live[position]))
            live[position].discard((left, right))
            oracle.delete(position, left, right)
        else:
            left, right = rng.randrange(domain), rng.randrange(domain)
            if (left, right) in live[position]:
                continue
            live[position].add((left, right))
            oracle.insert(position, left, right)
        u, v = rng.randrange(domain), rng.randrange(domain)
        assert oracle.count_three_paths(u, v) == oracle.count_three_paths_naive(u, v), (
            f"divergence at step {step} for query ({u}, {v})"
        )


class TestChainRelationValidation:
    def test_duplicate_insert_rejected(self):
        oracle = NaiveThreePathOracle()
        oracle.insert(1, "a", "b")
        with pytest.raises(InvalidUpdateError):
            oracle.insert(1, "a", "b")

    def test_missing_delete_rejected(self):
        oracle = NaiveThreePathOracle()
        with pytest.raises(InvalidUpdateError):
            oracle.delete(2, "a", "b")

    def test_invalid_position_rejected(self):
        oracle = NaiveThreePathOracle()
        with pytest.raises(ConfigurationError):
            oracle.insert(4, "a", "b")

    def test_invalid_sign_rejected(self):
        oracle = NaiveThreePathOracle()
        with pytest.raises(InvalidUpdateError):
            oracle.update(1, "a", "b", 0)

    def test_edge_and_update_counts(self):
        oracle = NaiveThreePathOracle()
        oracle.insert(1, "a", "b")
        oracle.insert(2, "b", "c")
        assert oracle.num_edges == 2
        assert oracle.updates_processed == 2


class TestNaiveOracle:
    def test_single_path(self):
        oracle = NaiveThreePathOracle()
        oracle.insert(1, "u", "x")
        oracle.insert(2, "x", "y")
        oracle.insert(3, "y", "v")
        assert oracle.count_three_paths("u", "v") == 1
        assert oracle.count_three_paths("u", "w") == 0

    def test_multiplicity(self):
        oracle = NaiveThreePathOracle()
        for x in ("x1", "x2"):
            oracle.insert(1, "u", x)
            for y in ("y1", "y2", "y3"):
                oracle.insert(3, y, "v") if x == "x1" else None
                try:
                    oracle.insert(2, x, y)
                except InvalidUpdateError:
                    pass
        # 2 choices of x, 3 choices of y, all edges present => 6 paths.
        assert oracle.count_three_paths("u", "v") == 6


class TestPhaseOracle:
    @pytest.mark.parametrize("phase_length", [1, 3, 7, 50])
    def test_exact_for_any_phase_length(self, phase_length):
        oracle = PhaseThreePathOracle(phase_length=phase_length)
        drive_oracle_randomly(oracle, seed=phase_length, steps=200)

    def test_phases_advance(self):
        oracle = PhaseThreePathOracle(phase_length=5)
        rng = random.Random(0)
        for index in range(40):
            oracle.insert(2, f"x{index}", f"y{rng.randrange(5)}")
        assert oracle.phases_completed >= 7

    def test_old_products_populated_after_phases(self):
        oracle = PhaseThreePathOracle(phase_length=4)
        oracle.insert(1, "u", "x")
        oracle.insert(2, "x", "y")
        oracle.insert(3, "y", "v")
        oracle.insert(1, "u", "x2")
        # Two phases later the first snapshot's products are active.
        for index in range(8):
            oracle.insert(2, f"fx{index}", f"fy{index}")
        assert oracle.count_three_paths("u", "v") == 1
        assert oracle._product_abc.get("u", "v") in (0, 1)

    def test_new_edge_count_bounded_by_two_phases(self):
        oracle = PhaseThreePathOracle(phase_length=10)
        for index in range(45):
            oracle.insert(2, f"x{index}", f"y{index}")
        assert oracle.new_edge_count() <= 2 * 10

    def test_dynamic_phase_length_grows_with_m(self):
        oracle = PhaseThreePathOracle(min_phase_length=4)
        initial = oracle.phase_length
        for index in range(200):
            oracle.insert(2, f"x{index}", f"y{index % 11}")
        assert oracle.phase_length >= initial

    def test_invalid_phase_length(self):
        with pytest.raises(ConfigurationError):
            PhaseThreePathOracle(phase_length=0)

    def test_deletions_cancel_in_deltas(self):
        oracle = PhaseThreePathOracle(phase_length=100)
        oracle.insert(2, "x", "y")
        oracle.delete(2, "x", "y")
        assert oracle.new_edge_count() == 0


class TestOracleBackedCounter:
    def test_validated_on_random_stream(self):
        counter = OracleBackedCounter(PhaseThreePathOracle(phase_length=9))
        stream = random_dynamic_stream(num_vertices=10, num_updates=110, seed=31)
        assert run_validated(counter, stream).validated

    def test_naive_oracle_also_exact(self):
        counter = OracleBackedCounter(NaiveThreePathOracle())
        stream = random_dynamic_stream(num_vertices=10, num_updates=90, seed=32)
        assert run_validated(counter, stream).validated

    def test_cost_model_shared_with_oracle(self):
        oracle = PhaseThreePathOracle(phase_length=5)
        counter = OracleBackedCounter(oracle)
        counter.insert_edge(1, 2)
        assert oracle.cost is counter.cost
        assert counter.cost.total() > 0
