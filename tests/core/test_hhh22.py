"""Tests specific to the HHH22-style baseline (classes, transitions, rebuilds)."""

from __future__ import annotations

from repro.core.hhh22 import HHH22Counter
from repro.graph.updates import UpdateStream
from repro.instrumentation.harness import run_validated

from tests.conftest import random_dynamic_stream


class TestClassMachinery:
    def test_threshold_tracks_edge_count(self):
        counter = HHH22Counter()
        counter.apply_all(random_dynamic_stream(num_vertices=20, num_updates=200, seed=21))
        m = counter.num_edges
        # After the last full rebuild the threshold is close to m^(1/3).
        assert 1.0 <= counter.threshold <= max(2.0, 2.0 * m ** (1 / 3))

    def test_hub_becomes_high(self):
        counter = HHH22Counter()
        hub_edges = [("hub", f"v{i}") for i in range(25)]
        counter.apply_all(UpdateStream.from_edges(hub_edges))
        assert counter.is_high("hub")
        assert not counter.is_high("v0")

    def test_hub_demoted_after_deletions(self):
        counter = HHH22Counter()
        hub_edges = [("hub", f"v{i}") for i in range(25)]
        counter.apply_all(UpdateStream.from_edges(hub_edges))
        for i in range(24):
            counter.delete_edge("hub", f"v{i}")
        assert not counter.is_high("hub")
        assert counter.count == 0

    def test_transitions_preserve_exactness(self):
        """A stream engineered to push a vertex across the threshold repeatedly."""
        counter = HHH22Counter()
        updates = []
        # Grow and shrink a hub several times amid background edges.
        background = [(f"a{i}", f"b{i}") for i in range(6)]
        updates.extend(background)
        stream = UpdateStream.from_edges(updates)
        counter.apply_all(stream)
        for _ in range(3):
            for i in range(12):
                counter.insert_edge("hub", f"x{i}")
                assert counter.is_consistent()
            for i in range(12):
                counter.delete_edge("hub", f"x{i}")
                assert counter.is_consistent()

    def test_validated_on_dense_small_graph(self):
        stream = random_dynamic_stream(num_vertices=7, num_updates=120, seed=22, delete_fraction=0.45)
        assert run_validated(HHH22Counter(), stream).validated

    def test_high_set_consistent_with_rebuild_threshold(self):
        counter = HHH22Counter()
        counter.apply_all(random_dynamic_stream(num_vertices=15, num_updates=150, seed=23))
        for vertex in counter.high_vertices:
            # A high vertex cannot have degree below the demotion threshold.
            assert counter.graph.degree(vertex) >= counter.threshold
