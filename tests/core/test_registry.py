"""Tests for the legacy counter-registry shims (see tests/api for the specs)."""

from __future__ import annotations

import pytest

from repro.core.base import DynamicFourCycleCounter
from repro.core.brute_force import BruteForceCounter
from repro.core.registry import available_counters, create_counter, register_counter
from repro.exceptions import ConfigurationError


EXPECTED_BUILTINS = {"brute-force", "wedge", "hhh22", "phase-fmm", "assadi-shah"}


class TestRegistry:
    def test_builtins_registered(self):
        assert EXPECTED_BUILTINS.issubset(set(available_counters()))

    def test_create_counter_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="create_counter"):
            counter = create_counter("wedge")
        assert isinstance(counter, DynamicFourCycleCounter)
        assert counter.name == "wedge"

    def test_create_with_kwargs(self):
        with pytest.warns(DeprecationWarning):
            counter = create_counter("phase-fmm", phase_length=7)
        assert counter.phase_length == 7

    def test_unknown_name(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError):
                create_counter("does-not-exist")

    def test_unknown_option_raises_configuration_error(self):
        """Regression: a bad kwarg must raise ConfigurationError naming the
        option and the counter, not a bare TypeError from the constructor."""
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ConfigurationError, match=r"'bogus'.*'wedge'"):
                create_counter("wedge", bogus=1)

    def test_register_and_overwrite_protection(self):
        register_counter("custom-test-counter", BruteForceCounter, overwrite=True)
        assert "custom-test-counter" in available_counters()
        with pytest.raises(ConfigurationError):
            register_counter("custom-test-counter", BruteForceCounter)
        register_counter("custom-test-counter", BruteForceCounter, overwrite=True)

    def test_legacy_registration_skips_option_validation(self):
        """Bare factories have unknown signatures; their kwargs pass through."""
        register_counter("custom-test-counter", BruteForceCounter, overwrite=True)
        with pytest.warns(DeprecationWarning):
            counter = create_counter("custom-test-counter", interned=False)
        assert isinstance(counter, BruteForceCounter)

    def test_available_counters_sorted(self):
        names = available_counters()
        assert names == sorted(names)
