"""Tests for the counter registry."""

from __future__ import annotations

import pytest

from repro.core.base import DynamicFourCycleCounter
from repro.core.brute_force import BruteForceCounter
from repro.core.registry import available_counters, create_counter, register_counter
from repro.exceptions import ConfigurationError


EXPECTED_BUILTINS = {"brute-force", "wedge", "hhh22", "phase-fmm", "assadi-shah"}


class TestRegistry:
    def test_builtins_registered(self):
        assert EXPECTED_BUILTINS.issubset(set(available_counters()))

    def test_create_counter(self):
        counter = create_counter("wedge")
        assert isinstance(counter, DynamicFourCycleCounter)
        assert counter.name == "wedge"

    def test_create_with_kwargs(self):
        counter = create_counter("phase-fmm", phase_length=7)
        assert counter.phase_length == 7

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            create_counter("does-not-exist")

    def test_register_and_overwrite_protection(self):
        register_counter("custom-test-counter", BruteForceCounter, overwrite=True)
        assert "custom-test-counter" in available_counters()
        with pytest.raises(ConfigurationError):
            register_counter("custom-test-counter", BruteForceCounter)
        register_counter("custom-test-counter", BruteForceCounter, overwrite=True)

    def test_available_counters_sorted(self):
        names = available_counters()
        assert names == sorted(names)
