"""Tests of the shared counter template (ordering, validation, metrics)."""

from __future__ import annotations

import pytest

from repro.core.brute_force import BruteForceCounter
from repro.exceptions import (
    DuplicateEdgeError,
    InvalidUpdateError,
    MissingEdgeError,
    SelfLoopError,
)
from repro.graph.updates import EdgeUpdate, UpdateStream

from tests.conftest import k4_edges, square_edges


class TestTemplateBehaviour:
    def test_counts_square(self, any_counter):
        for u, v in square_edges():
            any_counter.insert_edge(u, v)
        assert any_counter.count == 1

    def test_counts_k4(self, any_counter):
        for u, v in k4_edges():
            any_counter.insert_edge(u, v)
        assert any_counter.count == 3

    def test_deletion_reverts_count(self, any_counter):
        for u, v in square_edges():
            any_counter.insert_edge(u, v)
        any_counter.delete_edge("a", "b")
        assert any_counter.count == 0
        any_counter.insert_edge("a", "b")
        assert any_counter.count == 1

    def test_build_then_teardown_returns_to_zero(self, any_counter):
        stream = UpdateStream.build_then_teardown(k4_edges())
        any_counter.apply_all(stream)
        assert any_counter.count == 0
        assert any_counter.num_edges == 0

    def test_process_stream_returns_running_counts(self, any_counter):
        counts = any_counter.process_stream(UpdateStream.from_edges(square_edges()))
        assert counts == [0, 0, 0, 1]

    def test_recount_and_consistency(self, any_counter):
        for u, v in k4_edges():
            any_counter.insert_edge(u, v)
        assert any_counter.recount() == 3
        assert any_counter.is_consistent()

    def test_updates_processed(self, any_counter):
        any_counter.apply_all(UpdateStream.from_edges(square_edges()))
        assert any_counter.updates_processed == 4


class TestValidation:
    def test_self_loop_rejected(self, any_counter):
        with pytest.raises(SelfLoopError):
            any_counter.insert_edge("a", "a")

    def test_duplicate_insert_rejected(self, any_counter):
        any_counter.insert_edge(1, 2)
        with pytest.raises(DuplicateEdgeError):
            any_counter.insert_edge(2, 1)

    def test_missing_delete_rejected(self, any_counter):
        with pytest.raises(MissingEdgeError):
            any_counter.delete_edge(1, 2)


class TestMetricsRecording:
    def test_metrics_disabled_by_default(self):
        counter = BruteForceCounter()
        counter.insert_edge(1, 2)
        assert counter.metrics is None

    def test_metrics_recorded_when_enabled(self):
        counter = BruteForceCounter(record_metrics=True)
        counter.apply_all(UpdateStream.from_edges(k4_edges()))
        assert counter.metrics is not None
        assert len(counter.metrics) == 6
        summary = counter.metrics.summary()
        assert summary.updates == 6
        assert summary.final_edge_count == 6

    def test_cost_model_accumulates(self):
        counter = BruteForceCounter()
        counter.apply_all(UpdateStream.from_edges(k4_edges()))
        assert counter.cost.total() > 0

    def test_apply_returns_count(self):
        counter = BruteForceCounter()
        result = counter.apply(EdgeUpdate.insert(1, 2))
        assert result == 0 == counter.count


class TestApplyBatch:
    def test_batch_returns_boundary_count(self, any_counter):
        stream = UpdateStream.from_edges(k4_edges())
        assert any_counter.apply_batch(stream) == 3
        assert any_counter.is_consistent()

    def test_batch_advances_updates_processed_by_raw_size(self, any_counter):
        window = [
            EdgeUpdate.insert(1, 2),
            EdgeUpdate.delete(1, 2),
            EdgeUpdate.insert(2, 3),
        ]
        any_counter.apply_batch(window)
        assert any_counter.updates_processed == 3
        assert any_counter.num_edges == 1

    def test_empty_batch_is_noop(self, any_counter):
        any_counter.insert_edge(1, 2)
        assert any_counter.apply_batch([]) == any_counter.count
        # An empty window consumes zero stream positions.
        assert any_counter.updates_processed == 1
        assert any_counter.num_edges == 1

    def test_batch_metrics_recorded_once_per_batch(self):
        counter = BruteForceCounter(record_metrics=True)
        stream = UpdateStream.from_edges(k4_edges())
        for window in stream.batched(3):
            counter.apply_batch(window)
        assert counter.metrics is not None
        assert len(counter.metrics) == 2

    def test_inconsistent_batch_rejected_without_state_change(self, any_counter):
        any_counter.insert_edge(1, 2)
        with pytest.raises(InvalidUpdateError):
            any_counter.apply_batch([EdgeUpdate.insert(2, 1)])
        assert any_counter.num_edges == 1

    def test_process_stream_batched(self, any_counter):
        stream = UpdateStream.from_edges(k4_edges())
        counts = any_counter.process_stream_batched(stream, batch_size=2)
        assert len(counts) == 3
        assert counts[-1] == 3

    def test_fast_path_engages_above_threshold(self):
        # A window at least as large as the threshold must route through the
        # brute-force recount hook instead of the per-update replay.
        counter = BruteForceCounter()
        size = counter.batch_fast_path_threshold
        edges = [(0, i) for i in range(1, size + 1)]
        counter.apply_batch(UpdateStream.from_edges(edges))
        assert counter.cost.get("batch_recount") > 0
        assert counter.is_consistent()
