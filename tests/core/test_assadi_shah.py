"""Tests for the main algorithm's oracle and counter (Sections 4-7)."""

from __future__ import annotations

import random

import pytest

from repro.core.assadi_shah import (
    AssadiShahCounter,
    AssadiShahThreePathOracle,
    expected_phase_length,
    expected_update_exponent,
)
from repro.instrumentation.harness import run_validated
from repro.workloads.generators import hub_adversarial_stream, power_law_stream

from tests.conftest import random_dynamic_stream
from tests.core.test_oracles import drive_oracle_randomly


class TestOracleExactness:
    @pytest.mark.parametrize("phase_length", [1, 5, 17, 200])
    def test_exact_for_any_phase_length(self, phase_length):
        oracle = AssadiShahThreePathOracle(phase_length=phase_length)
        drive_oracle_randomly(oracle, seed=100 + phase_length, steps=220)

    def test_exact_with_small_eps_thresholds(self):
        """A small dense threshold forces vertices into the dense class and
        exercises the Section 7 transition patches."""
        oracle = AssadiShahThreePathOracle(phase_length=7, eps=0.15)
        drive_oracle_randomly(oracle, seed=7, steps=220, domain=6)

    def test_sparse_wedge_structures_match_definition(self):
        oracle = AssadiShahThreePathOracle(phase_length=50)
        rng = random.Random(3)
        for _ in range(120):
            position = rng.choice((1, 2, 3))
            left, right = rng.randrange(7), rng.randrange(7)
            if oracle.relation(position).has(left, right):
                oracle.delete(position, left, right)
            else:
                oracle.insert(position, left, right)
        # A^{*S} B^{S*}: recompute from scratch and compare entry by entry.
        for u in range(7):
            for y in range(7):
                expected = 0
                for x in oracle.relation(1).forward.get(u, set()):
                    if x in oracle.dense_l2:
                        continue
                    if oracle.relation(2).has(x, y):
                        expected += 1
                assert oracle.sparse_wedges_ab.get(u, y) == expected
        # B^{*S} C^{S*} similarly.
        for x in range(7):
            for v in range(7):
                expected = 0
                for y in oracle.relation(2).forward.get(x, set()):
                    if y in oracle.dense_l3:
                        continue
                    if oracle.relation(3).has(y, v):
                        expected += 1
                assert oracle.sparse_wedges_bc.get(x, v) == expected

    def test_dense_class_populated_under_skew(self):
        oracle = AssadiShahThreePathOracle(phase_length=30, eps=0.1)
        for index in range(40):
            oracle.insert(2, "hot", f"y{index}")
            oracle.insert(1, f"u{index}", "hot")
        assert "hot" in oracle.dense_l2

    def test_high_endpoint_detection(self):
        oracle = AssadiShahThreePathOracle(phase_length=30)
        for index in range(30):
            oracle.insert(1, "star", f"x{index}")
        assert oracle.is_high_left("star")
        assert not oracle.is_high_left("nobody")


class TestCounter:
    def test_validated_on_random_streams(self):
        stream = random_dynamic_stream(num_vertices=11, num_updates=130, seed=41)
        counter = AssadiShahCounter(phase_length=11)
        assert run_validated(counter, stream).validated

    def test_validated_on_power_law(self):
        stream = power_law_stream(num_vertices=16, num_updates=120, seed=42)
        assert run_validated(AssadiShahCounter(phase_length=9), stream).validated

    def test_validated_on_hubs(self):
        stream = hub_adversarial_stream(num_vertices=16, num_updates=130, num_hubs=2, seed=43)
        assert run_validated(AssadiShahCounter(phase_length=13), stream).validated

    def test_phases_progress(self):
        counter = AssadiShahCounter(phase_length=6)
        stream = random_dynamic_stream(num_vertices=10, num_updates=80, seed=44)
        counter.apply_all(stream)
        # Each general update expands into six oracle updates.
        assert counter.phases_completed >= (6 * 80) // 6 - 1

    def test_typed_accessor(self):
        counter = AssadiShahCounter(phase_length=5)
        assert isinstance(counter.main_oracle, AssadiShahThreePathOracle)


class TestTheoreticalHelpers:
    def test_expected_update_exponent(self):
        assert expected_update_exponent() == pytest.approx(2 / 3 - 0.0098109, abs=1e-6)
        assert expected_update_exponent(eps=1 / 24) == pytest.approx(0.625)

    def test_expected_phase_length(self):
        assert expected_phase_length(1) == 1
        assert expected_phase_length(10 ** 6, delta=0.125) == pytest.approx(
            (10 ** 6) ** 0.875, rel=1e-6
        )
        assert expected_phase_length(10 ** 6) < 10 ** 6
