"""Tests for the layered 4-cycle counter (Theorem 2) and its oracle copies."""

from __future__ import annotations

import random

import pytest

from repro.core.assadi_shah import AssadiShahThreePathOracle
from repro.core.layered import CHAINS, LayeredFourCycleCounter, query_direction
from repro.core.oracles import NaiveThreePathOracle, PhaseThreePathOracle
from repro.exceptions import InvalidUpdateError
from repro.graph.updates import LayeredEdgeUpdate


def drive_layered_counter(counter: LayeredFourCycleCounter, seed: int, steps: int, domain: int = 8):
    rng = random.Random(seed)
    live = {relation: set() for relation in "ABCD"}
    for step in range(steps):
        relation = rng.choice("ABCD")
        if live[relation] and rng.random() < 0.35:
            left, right = rng.choice(sorted(live[relation]))
            live[relation].discard((left, right))
            counter.delete(relation, left, right)
        else:
            left, right = rng.randrange(domain), rng.randrange(domain)
            if (left, right) in live[relation]:
                continue
            live[relation].add((left, right))
            counter.insert(relation, left, right)
        assert counter.is_consistent(), f"diverged at step {step}"


class TestChains:
    def test_chain_definitions(self):
        assert CHAINS["D"] == ("A", "B", "C")
        assert CHAINS["A"] == ("B", "C", "D")
        for query_relation, chain in CHAINS.items():
            assert query_relation not in chain
            assert len(set(chain)) == 3

    def test_query_direction(self):
        update = LayeredEdgeUpdate.insert("D", "v4", "v1")
        assert query_direction(update) == ("v1", "v4")


class TestSingleCycle:
    def test_count_reaches_one(self):
        counter = LayeredFourCycleCounter()
        counter.insert("A", 1, 2)
        counter.insert("B", 2, 3)
        counter.insert("C", 3, 4)
        assert counter.count == 0
        counter.insert("D", 4, 1)
        assert counter.count == 1

    def test_any_insertion_order(self):
        counter = LayeredFourCycleCounter()
        counter.insert("D", 4, 1)
        counter.insert("C", 3, 4)
        counter.insert("B", 2, 3)
        counter.insert("A", 1, 2)
        assert counter.count == 1

    def test_deleting_any_relation_removes_cycle(self):
        for relation, pair in (("A", (1, 2)), ("B", (2, 3)), ("C", (3, 4)), ("D", (4, 1))):
            counter = LayeredFourCycleCounter()
            counter.insert("A", 1, 2)
            counter.insert("B", 2, 3)
            counter.insert("C", 3, 4)
            counter.insert("D", 4, 1)
            counter.delete(relation, *pair)
            assert counter.count == 0

    def test_complete_layered_graph(self):
        counter = LayeredFourCycleCounter()
        n = 3
        for relation in "ABCD":
            for left in range(n):
                for right in range(n):
                    counter.insert(relation, left, right)
        assert counter.count == n ** 4
        assert counter.is_consistent()


class TestOracleChoices:
    def test_naive_oracle(self):
        drive_layered_counter(LayeredFourCycleCounter(), seed=1, steps=200)

    def test_phase_oracle(self):
        counter = LayeredFourCycleCounter(
            oracle_factory=lambda: PhaseThreePathOracle(phase_length=9)
        )
        drive_layered_counter(counter, seed=2, steps=200)

    def test_assadi_shah_oracle(self):
        counter = LayeredFourCycleCounter(
            oracle_factory=lambda: AssadiShahThreePathOracle(phase_length=7)
        )
        drive_layered_counter(counter, seed=3, steps=200)


class TestBehaviour:
    def test_apply_layered_updates(self):
        counter = LayeredFourCycleCounter()
        counter.apply(LayeredEdgeUpdate.insert("A", 1, 2))
        assert counter.updates_processed == 1

    def test_unknown_relation_rejected(self):
        with pytest.raises(InvalidUpdateError):
            LayeredFourCycleCounter().oracle_for("Z")

    def test_process_stream(self):
        counter = LayeredFourCycleCounter()
        updates = [
            LayeredEdgeUpdate.insert("A", 1, 2),
            LayeredEdgeUpdate.insert("B", 2, 3),
            LayeredEdgeUpdate.insert("C", 3, 4),
            LayeredEdgeUpdate.insert("D", 4, 1),
        ]
        assert counter.process_stream(updates) == [0, 0, 0, 1]

    def test_recount_requires_mirror(self):
        counter = LayeredFourCycleCounter(mirror_graph=False)
        counter.insert("A", 1, 2)
        with pytest.raises(InvalidUpdateError):
            counter.recount()

    def test_oracles_share_cost_model(self):
        counter = LayeredFourCycleCounter()
        counter.insert("A", 1, 2)
        assert counter.cost.total() >= 0
        for relation in "ABCD":
            assert counter.oracle_for(relation).cost is counter.cost
