"""Tests specific to the Appendix A wedge counter."""

from __future__ import annotations

from repro.core.wedge_counter import WedgeCounter
from repro.graph.static_counts import count_wedges_between
from repro.graph.updates import UpdateStream

from tests.conftest import k4_edges, random_dynamic_stream


class TestWedgeStructure:
    def test_wedge_counts_match_static_on_k4(self):
        counter = WedgeCounter()
        counter.apply_all(UpdateStream.from_edges(k4_edges()))
        for a in range(4):
            for b in range(4):
                if a != b:
                    assert counter.wedges_between(a, b) == count_wedges_between(counter.graph, a, b)

    def test_wedge_counts_match_static_after_churn(self):
        counter = WedgeCounter()
        stream = random_dynamic_stream(num_vertices=9, num_updates=120, seed=13)
        counter.apply_all(stream)
        vertices = list(counter.graph.vertices())
        for a in vertices:
            for b in vertices:
                if a != b:
                    assert counter.wedges_between(a, b) == count_wedges_between(counter.graph, a, b)

    def test_wedge_matrix_symmetric(self):
        counter = WedgeCounter()
        counter.apply_all(random_dynamic_stream(num_vertices=8, num_updates=60, seed=14))
        for row, column, value in counter.wedge_matrix.items():
            assert counter.wedge_matrix.get(column, row) == value

    def test_empty_after_teardown(self):
        counter = WedgeCounter()
        counter.apply_all(UpdateStream.build_then_teardown(k4_edges()))
        assert counter.wedge_matrix.nnz == 0

    def test_update_cost_scales_with_degree_not_graph(self):
        """The O(n) bound: an update's structure work touches deg(u)+deg(v) entries."""
        counter = WedgeCounter()
        star_edges = [("hub", f"leaf{i}") for i in range(30)]
        counter.apply_all(UpdateStream.from_edges(star_edges))
        before = counter.cost.get("structure_update")
        counter.insert_edge("leaf0", "leaf1")
        spent = counter.cost.get("structure_update") - before
        # deg(leaf0) + deg(leaf1) = 2 wedge entries each direction = 4 charges... plus hub side none.
        assert spent <= 8
