"""Tests for the synthetic workload generators."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.generators import (
    complete_bipartite_stream,
    erdos_renyi_stream,
    hub_adversarial_stream,
    mixed_churn_stream,
    power_law_stream,
    sliding_window_stream,
    stream_catalogue,
)


class TestConsistencyAndDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: erdos_renyi_stream(20, 200, seed=seed),
            lambda seed: power_law_stream(20, 200, seed=seed),
            lambda seed: hub_adversarial_stream(20, 200, seed=seed),
            lambda seed: sliding_window_stream(20, 100, window_size=30, seed=seed),
            lambda seed: mixed_churn_stream(20, 200, target_live_edges=40, seed=seed),
        ],
        ids=["erdos-renyi", "power-law", "hubs", "sliding-window", "churn"],
    )
    def test_streams_are_consistent_and_deterministic(self, factory):
        first = factory(3)
        second = factory(3)
        different = factory(4)
        assert first.validate()
        assert list(first) == list(second)
        assert list(first) != list(different)

    def test_requested_length(self):
        assert len(erdos_renyi_stream(15, 123, seed=1)) == 123
        assert len(mixed_churn_stream(15, 77, target_live_edges=20, seed=1)) == 77


class TestWorkloadShapes:
    def test_erdos_renyi_has_deletions(self):
        stream = erdos_renyi_stream(20, 300, delete_fraction=0.4, seed=2)
        assert stream.num_deletions() > 0
        assert stream.num_insertions() > stream.num_deletions()

    def test_insert_only_when_delete_fraction_zero(self):
        stream = erdos_renyi_stream(20, 100, delete_fraction=0.0, seed=2)
        assert stream.num_deletions() == 0

    def test_power_law_skews_degrees(self):
        stream = power_law_stream(40, 400, exponent=2.5, delete_fraction=0.0, seed=3)
        from repro.graph.dynamic_graph import DynamicGraph

        graph = DynamicGraph()
        graph.apply_all(stream)
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        assert degrees[0] >= 3 * degrees[len(degrees) // 2 :][0] or degrees[0] >= 10

    def test_hub_stream_concentrates_on_hubs(self):
        stream = hub_adversarial_stream(30, 300, num_hubs=2, hub_probability=0.9, seed=4)
        from repro.graph.dynamic_graph import DynamicGraph

        graph = DynamicGraph()
        graph.apply_all(stream)
        hub_degrees = graph.degree(0) + graph.degree(1)
        # With hub_probability=0.9 the vast majority of live edges touch a hub.
        assert hub_degrees >= 0.6 * graph.num_edges

    def test_sliding_window_bounds_live_edges(self):
        stream = sliding_window_stream(25, 150, window_size=20, seed=5)
        assert stream.max_live_edges() <= 21

    def test_churn_hovers_near_target(self):
        stream = mixed_churn_stream(30, 400, target_live_edges=50, seed=6)
        assert 10 <= len(stream.final_edges()) <= 120

    def test_complete_bipartite(self):
        stream = complete_bipartite_stream(3, 4)
        assert len(stream) == 12
        assert stream.num_deletions() == 0

    def test_catalogue(self):
        catalogue = stream_catalogue(scale=1, seed=0)
        assert set(catalogue) == {"erdos-renyi", "power-law", "hubs", "sliding-window", "churn"}
        for stream in catalogue.values():
            assert stream.validate()


class TestValidation:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            erdos_renyi_stream(0, 10)
        with pytest.raises(ConfigurationError):
            erdos_renyi_stream(10, 10, delete_fraction=1.5)
        with pytest.raises(ConfigurationError):
            power_law_stream(10, 10, exponent=-1)
        with pytest.raises(ConfigurationError):
            hub_adversarial_stream(10, 10, num_hubs=10)
        with pytest.raises(ConfigurationError):
            sliding_window_stream(10, 10, window_size=0)
        with pytest.raises(ConfigurationError):
            complete_bipartite_stream(0, 3)


class TestBatchedCatalogue:
    def test_windows_recombine_to_catalogue_streams(self):
        from repro.workloads.generators import batched_stream_catalogue, stream_catalogue

        batched = batched_stream_catalogue(batch_size=32, seed=4)
        plain = stream_catalogue(seed=4)
        assert set(batched) == set(plain)
        for name, windows in batched.items():
            recombined = [update for window in windows for update in window]
            assert recombined == list(plain[name])
            assert all(len(window) <= 32 for window in windows)

    def test_windows_drive_apply_batch(self):
        from repro.api import counter_spec
        from repro.workloads.generators import batched_stream_catalogue

        windows = batched_stream_catalogue(batch_size=64, seed=1)["erdos-renyi"]
        counter = counter_spec("wedge").create()
        for window in windows:
            counter.apply_batch(window)
        assert counter.is_consistent()
