"""Tests for the database (join) workload generators."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.join_workloads import (
    JOIN_RELATIONS,
    figure_one_workload,
    random_join_workload,
    skewed_join_workload,
)


def replay_is_consistent(updates) -> bool:
    live = {name: set() for name in JOIN_RELATIONS}
    for update in updates:
        key = (update.left, update.right)
        if update.is_insert:
            if key in live[update.relation]:
                return False
            live[update.relation].add(key)
        else:
            if key not in live[update.relation]:
                return False
            live[update.relation].discard(key)
    return True


class TestRandomJoinWorkload:
    def test_consistency_and_length(self):
        updates = random_join_workload(domain_size=8, num_updates=300, seed=1)
        assert len(updates) == 300
        assert replay_is_consistent(updates)

    def test_deterministic(self):
        assert random_join_workload(8, 100, seed=2) == random_join_workload(8, 100, seed=2)
        assert random_join_workload(8, 100, seed=2) != random_join_workload(8, 100, seed=3)

    def test_touches_all_relations(self):
        updates = random_join_workload(domain_size=6, num_updates=200, seed=4)
        assert {update.relation for update in updates} == set(JOIN_RELATIONS)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            random_join_workload(0, 10)
        with pytest.raises(ConfigurationError):
            random_join_workload(10, 0)
        with pytest.raises(ConfigurationError):
            random_join_workload(10, 10, delete_fraction=1.0)


class TestSkewedJoinWorkload:
    def test_consistency(self):
        updates = skewed_join_workload(domain_size=10, num_updates=300, seed=5)
        assert replay_is_consistent(updates)

    def test_hot_values_dominate(self):
        updates = skewed_join_workload(
            domain_size=20, num_updates=400, hot_fraction=0.1, hot_probability=0.9, seed=6
        )
        value_uses = Counter()
        for update in updates:
            if update.is_insert:
                value_uses[update.left] += 1
                value_uses[update.right] += 1
        hot_uses = sum(count for value, count in value_uses.items() if value < 2)
        assert hot_uses >= 0.5 * sum(value_uses.values())

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            skewed_join_workload(1, 10)
        with pytest.raises(ConfigurationError):
            skewed_join_workload(10, 10, hot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            skewed_join_workload(10, 10, hot_probability=2.0)


class TestFigureOneWorkload:
    def test_contents(self):
        updates = figure_one_workload()
        assert len(updates) == 9
        assert all(update.is_insert for update in updates)
        assert {update.relation for update in updates} == {"A", "B"}
