"""Tests for relation schemas and dynamic binary relations."""

from __future__ import annotations

import pytest

from repro.db.relation import Relation
from repro.db.schema import RelationSchema, four_cycle_schemas, validate_cyclic_chain
from repro.exceptions import DuplicateTupleError, MissingTupleError, SchemaError


class TestSchema:
    def test_basic_schema(self):
        schema = RelationSchema("R", "X", "Y")
        assert schema.attributes == ("X", "Y")
        assert str(schema) == "R(X, Y)"

    def test_invalid_schemas(self):
        with pytest.raises(SchemaError):
            RelationSchema("", "X", "Y")
        with pytest.raises(SchemaError):
            RelationSchema("R", "X", "X")

    def test_four_cycle_schemas_chain(self):
        schemas = four_cycle_schemas()
        assert [schema.name for schema in schemas] == ["A", "B", "C", "D"]
        validate_cyclic_chain(schemas)

    def test_non_chaining_schemas_rejected(self):
        bad = (
            RelationSchema("A", "L1", "L2"),
            RelationSchema("B", "L3", "L4"),
        )
        with pytest.raises(SchemaError):
            validate_cyclic_chain(bad)

    def test_single_relation_rejected(self):
        with pytest.raises(SchemaError):
            validate_cyclic_chain([RelationSchema("A", "X", "Y")])


class TestRelation:
    def make(self) -> Relation:
        return Relation(RelationSchema("A", "L1", "L2"))

    def test_insert_and_contains(self):
        relation = self.make()
        relation.insert(1, "a")
        assert relation.contains(1, "a")
        assert (1, "a") in relation
        assert not relation.contains("a", 1)
        assert relation.size == 1 == len(relation)

    def test_duplicate_insert_rejected(self):
        relation = self.make()
        relation.insert(1, "a")
        with pytest.raises(DuplicateTupleError):
            relation.insert(1, "a")

    def test_missing_delete_rejected(self):
        with pytest.raises(MissingTupleError):
            self.make().delete(1, "a")

    def test_indexes_both_sides(self):
        relation = self.make()
        relation.insert(1, "a")
        relation.insert(1, "b")
        relation.insert(2, "a")
        assert relation.matching_left(1) == {"a", "b"}
        assert relation.matching_right("a") == {1, 2}
        assert relation.degree_left(1) == 2
        assert relation.degree_right("a") == 2
        assert relation.left_values() == {1, 2}
        assert relation.right_values() == {"a", "b"}

    def test_delete_updates_indexes(self):
        relation = self.make()
        relation.insert(1, "a")
        relation.delete(1, "a")
        assert relation.size == 0
        assert relation.matching_left(1) == set()

    def test_constructor_with_tuples_and_copy(self):
        relation = Relation(RelationSchema("A", "X", "Y"), tuples=[(1, 2), (3, 4)])
        clone = relation.copy()
        clone.delete(1, 2)
        assert relation.contains(1, 2)
        assert not clone.contains(1, 2)

    def test_tuples_iteration(self):
        relation = Relation(RelationSchema("A", "X", "Y"), tuples=[(1, 2), (3, 4)])
        assert set(relation.tuples()) == {(1, 2), (3, 4)}
