"""Tests for static cyclic joins and the incrementally maintained count view."""

from __future__ import annotations

import random

import pytest

from repro.core.oracles import PhaseThreePathOracle
from repro.db.ivm import CyclicJoinCountView, TupleUpdate, normalize_tuple_updates
from repro.db.join import count_cyclic_join, count_two_hop_join, relations_to_layered_graph
from repro.db.relation import Relation
from repro.db.schema import RelationSchema, four_cycle_schemas
from repro.exceptions import InvalidUpdateError, SchemaError
from repro.workloads.join_workloads import (
    figure_one_workload,
    random_join_workload,
    skewed_join_workload,
)


def build_relations(tuples_by_name):
    schemas = four_cycle_schemas()
    relations = []
    for schema in schemas:
        relations.append(Relation(schema, tuples=tuples_by_name.get(schema.name, [])))
    return relations


class TestStaticJoins:
    def test_figure_one_two_hop_join(self):
        """Figure 1: |A ⋈ B| = 6 for the worked example relations."""
        a = Relation(RelationSchema("A", "L1", "L2"), tuples=[(1, 1), (1, 2), (1, 3), (2, 2), (3, 2)])
        b = Relation(RelationSchema("B", "L2", "L3"), tuples=[(1, 1), (2, 1), (3, 1), (3, 3)])
        assert count_two_hop_join(a, b) == 6

    def test_two_hop_join_requires_chaining(self):
        a = Relation(RelationSchema("A", "L1", "L2"))
        c = Relation(RelationSchema("C", "L3", "L4"))
        with pytest.raises(SchemaError):
            count_two_hop_join(a, c)

    def test_single_cycle_join(self):
        relations = build_relations(
            {"A": [(1, 2)], "B": [(2, 3)], "C": [(3, 4)], "D": [(4, 1)]}
        )
        assert count_cyclic_join(relations) == 1

    def test_cross_product_join(self):
        n = 3
        full = [(i, j) for i in range(n) for j in range(n)]
        relations = build_relations({"A": full, "B": full, "C": full, "D": full})
        assert count_cyclic_join(relations) == n ** 4

    def test_wrong_arity_rejected(self):
        with pytest.raises(SchemaError):
            count_cyclic_join(build_relations({})[:3])

    def test_relations_to_layered_graph_matches_join(self):
        rng = random.Random(4)
        tuples = {
            name: [(rng.randrange(5), rng.randrange(5)) for _ in range(8)] for name in "ABCD"
        }
        tuples = {name: list(set(pairs)) for name, pairs in tuples.items()}
        relations = build_relations(tuples)
        graph = relations_to_layered_graph(relations)
        assert graph.count_layered_four_cycles() == count_cyclic_join(relations)


class TestCyclicJoinCountView:
    def test_single_cycle_incrementally(self):
        view = CyclicJoinCountView()
        view.insert("A", 1, 2)
        view.insert("B", 2, 3)
        view.insert("C", 3, 4)
        assert view.count == 0
        view.insert("D", 4, 1)
        assert view.count == 1
        view.delete("B", 2, 3)
        assert view.count == 0

    def test_random_workload_consistent(self):
        view = CyclicJoinCountView()
        for update in random_join_workload(domain_size=7, num_updates=250, seed=11):
            view.apply(update)
        assert view.is_consistent()

    def test_skewed_workload_consistent(self):
        view = CyclicJoinCountView()
        for update in skewed_join_workload(domain_size=9, num_updates=250, seed=12):
            view.apply(update)
        assert view.is_consistent()

    def test_consistent_after_every_update(self):
        view = CyclicJoinCountView()
        for update in random_join_workload(domain_size=5, num_updates=120, seed=13):
            view.apply(update)
            assert view.is_consistent()

    def test_phase_oracle_backend(self):
        view = CyclicJoinCountView(
            oracle_factory=lambda: PhaseThreePathOracle(phase_length=10)
        )
        for update in random_join_workload(domain_size=6, num_updates=200, seed=14):
            view.apply(update)
        assert view.is_consistent()

    def test_custom_schemas(self):
        schemas = (
            RelationSchema("Orders", "customer", "item"),
            RelationSchema("Parts", "item", "supplier"),
            RelationSchema("Offers", "supplier", "region"),
            RelationSchema("Coverage", "region", "customer"),
        )
        view = CyclicJoinCountView(schemas=schemas)
        view.insert("Orders", "alice", "widget")
        view.insert("Parts", "widget", "acme")
        view.insert("Offers", "acme", "emea")
        view.insert("Coverage", "emea", "alice")
        assert view.count == 1
        assert view.relation("Orders").size == 1
        assert view.relation_names() == ["Orders", "Parts", "Offers", "Coverage"]

    def test_unknown_relation_rejected(self):
        view = CyclicJoinCountView()
        with pytest.raises(SchemaError):
            view.insert("X", 1, 2)

    def test_figure_one_workload_runs(self):
        view = CyclicJoinCountView()
        view.apply_all(figure_one_workload())
        # Only A and B are populated, so the cyclic join is empty...
        assert view.count == 0
        # ... but the binary join A ⋈ B has the figure's six tuples.
        assert count_two_hop_join(view.relation("A"), view.relation("B")) == 6

    def test_tuple_update_constructors(self):
        assert TupleUpdate.insert("A", 1, 2).is_insert
        assert not TupleUpdate.delete("A", 1, 2).is_insert


class TestTupleBatch:
    def test_normalize_groups_per_relation(self):
        batch = normalize_tuple_updates(
            [
                TupleUpdate.insert("A", 1, 2),
                TupleUpdate.insert("B", 2, 3),
                TupleUpdate.insert("A", 5, 6),
            ]
        )
        assert batch.relations == ("A", "B")
        groups = list(batch.groups())
        assert groups[0][0] == "A"
        assert len(groups[0][2]) == 2  # two A insertions
        assert batch.raw_size == 3
        assert batch.cancelled == 0

    def test_insert_delete_pair_cancels(self):
        batch = normalize_tuple_updates(
            [TupleUpdate.insert("A", 1, 2), TupleUpdate.delete("A", 1, 2)]
        )
        assert batch.is_empty
        assert batch.cancelled == 2

    def test_deletions_ordered_before_insertions_within_relation(self):
        batch = normalize_tuple_updates(
            [TupleUpdate.insert("A", 1, 2), TupleUpdate.delete("A", 3, 4)],
            lambda relation, left, right: (left, right) == (3, 4),
        )
        kinds = [update.is_insert for update in batch]
        assert kinds == [False, True]

    def test_inconsistent_window_rejected(self):
        with pytest.raises(InvalidUpdateError):
            normalize_tuple_updates([TupleUpdate.delete("A", 1, 2)])
        with pytest.raises(InvalidUpdateError):
            normalize_tuple_updates(
                [TupleUpdate.insert("A", 1, 2)],
                lambda relation, left, right: True,
            )


class TestViewApplyBatch:
    def test_batch_matches_sequential_replay(self):
        workload = random_join_workload(6, 200, seed=13)
        sequential = CyclicJoinCountView()
        sequential.apply_all(workload)
        batched = CyclicJoinCountView()
        for start in range(0, len(workload), 32):
            batched.apply_batch(workload[start:start + 32])
        assert batched.count == sequential.count
        assert batched.is_consistent()
        assert batched.updates_processed == len(workload)

    def test_batch_on_renamed_schemas(self):
        schemas = (
            RelationSchema("Orders", "customer", "item"),
            RelationSchema("Parts", "item", "supplier"),
            RelationSchema("Offers", "supplier", "region"),
            RelationSchema("Coverage", "region", "customer"),
        )
        view = CyclicJoinCountView(schemas=schemas)
        count = view.apply_batch(
            [
                TupleUpdate.insert("Orders", "alice", "widget"),
                TupleUpdate.insert("Parts", "widget", "acme"),
                TupleUpdate.insert("Offers", "acme", "emea"),
                TupleUpdate.insert("Coverage", "emea", "alice"),
            ]
        )
        assert count == 1
        assert view.is_consistent()

    def test_batch_unknown_relation_rejected(self):
        view = CyclicJoinCountView()
        with pytest.raises(SchemaError):
            view.apply_batch([TupleUpdate.insert("X", 1, 2)])

    def test_batch_cancellation_is_noop(self):
        view = CyclicJoinCountView()
        view.insert("A", 1, 2)
        before = view.count
        view.apply_batch(
            [
                TupleUpdate.delete("A", 1, 2),
                TupleUpdate.insert("A", 1, 2),
                TupleUpdate.insert("B", 7, 8),
                TupleUpdate.delete("B", 7, 8),
            ]
        )
        assert view.count == before
        assert view.relation("A").size == 1
        assert view.relation("B").size == 0
        assert view.updates_processed == 5
