"""Fixture-driven tests for every repro-lint rule.

Each rule gets the same treatment: its ``bad`` fixture must fire on every
seeded violation, its ``good`` fixture (guarded, pragma-annotated, or simply
out of scope) must stay silent.  The fixtures are real parseable python so
the corpus doubles as executable documentation of what each rule means.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import DEFAULT_RULES, lint_paths, load_module, run_rules

FIXTURES = Path(__file__).parent / "fixtures"


def lint_fixture(relative: str):
    """Active findings for one fixture file, all default rules."""
    path = FIXTURES / relative
    return lint_paths([path], DEFAULT_RULES).findings


def rules_of(findings):
    return [finding.rule for finding in findings]


class TestExactnessRule:
    def test_bad_fixture_fires_on_every_unguarded_cast(self):
        findings = lint_fixture("rep101/bad.py")
        assert rules_of(findings) == ["REP101"] * 4
        messages = " ".join(finding.message for finding in findings)
        assert "astype" in messages
        assert "bincount" in messages
        assert "dtype=float" in messages

    def test_good_fixture_is_silent(self):
        assert lint_fixture("rep101/good.py") == []

    def test_guard_variable_is_recognized(self, tmp_path):
        guarded = tmp_path / "guarded.py"
        guarded.write_text(
            "import numpy as np\n"
            "BOUND_EXACT_BOUND = float(2**53)\n"
            "def f(keys, values):\n"
            "    ok = abs(values).max() < BOUND_EXACT_BOUND\n"
            "    if ok:\n"
            "        return np.bincount(keys, weights=values)\n"
            "    return None\n"
        )
        assert lint_paths([guarded], DEFAULT_RULES).findings == []

    def test_unguarded_variant_fires(self, tmp_path):
        unguarded = tmp_path / "unguarded.py"
        unguarded.write_text(
            "import numpy as np\n"
            "def f(keys, values):\n"
            "    if len(values) > 0:\n"
            "        return np.bincount(keys, weights=values)\n"
            "    return None\n"
        )
        assert rules_of(lint_paths([unguarded], DEFAULT_RULES).findings) == ["REP101"]


class TestLayeringRule:
    def test_bad_fixture_fires_on_both_upward_imports(self):
        findings = lint_fixture("rep102/bad/repro/graph/up_import.py")
        assert rules_of(findings) == ["REP102", "REP102"]
        assert "upward import" in findings[0].message
        assert "'core'" in findings[0].message
        assert "'api'" in findings[1].message

    def test_good_fixture_is_silent(self):
        # Downward imports, TYPE_CHECKING imports, and function-local late
        # imports are all sanctioned.
        assert lint_fixture("rep102/good/repro/core/down_import.py") == []

    def test_unknown_package_is_itself_a_finding(self, tmp_path):
        rogue = tmp_path / "repro" / "newpkg" / "module.py"
        rogue.parent.mkdir(parents=True)
        rogue.write_text("import os\n")
        findings = lint_paths([rogue], DEFAULT_RULES).findings
        assert rules_of(findings) == ["REP102"]
        assert "layer table" in findings[0].message

    def test_fixture_outside_repro_tree_is_out_of_scope(self, tmp_path):
        outside = tmp_path / "free.py"
        outside.write_text("import repro.api\n")
        assert lint_paths([outside], DEFAULT_RULES).findings == []


class TestHotPathRule:
    def test_bad_fixture_fires_on_every_dict_use(self):
        findings = lint_fixture("rep103/bad.py")
        assert rules_of(findings) == ["REP103"] * 4
        assert all("_batch_hook" in finding.message for finding in findings)

    def test_good_fixture_is_silent(self):
        assert lint_fixture("rep103/good.py") == []

    def test_manifest_path_suffix_registers_hot_function(self, tmp_path):
        # A file whose display path ends with a manifest suffix makes the
        # manifest qualname hot even though the name is not in the hot list.
        hot_file = tmp_path / "repro" / "core" / "base.py"
        hot_file.parent.mkdir(parents=True)
        hot_file.write_text(
            "class DynamicFourCycleCounter:\n"
            "    def apply(self, update):\n"
            "        return {u: 1 for u in update}\n"
            "    def cold(self, update):\n"
            "        return {u: 1 for u in update}\n"
        )
        findings = lint_paths([hot_file], DEFAULT_RULES, root=tmp_path).findings
        assert rules_of(findings) == ["REP103"]
        assert "DynamicFourCycleCounter.apply" in findings[0].message


class TestShardSafetyRule:
    def test_bad_fixture_fires_on_lambda_closure_and_bound_method(self):
        findings = lint_fixture("rep104/bad.py")
        assert rules_of(findings) == ["REP104"] * 3
        messages = " ".join(finding.message for finding in findings)
        assert "lambda" in messages
        assert "closure" in messages
        assert "bound-method" in messages

    def test_good_fixture_is_silent(self):
        assert lint_fixture("rep104/good.py") == []


class TestBroadExceptRule:
    def test_bad_fixture_fires_on_every_silent_handler(self):
        findings = lint_fixture("rep105/bad.py")
        assert rules_of(findings) == ["REP105"] * 3

    def test_good_fixture_is_silent(self):
        assert lint_fixture("rep105/good.py") == []

    def test_reraise_excuses_broad_handler(self, tmp_path):
        module = tmp_path / "reraise.py"
        module.write_text(
            "def f(task):\n"
            "    try:\n"
            "        return task()\n"
            "    except Exception as error:\n"
            "        raise ValueError('no') from error\n"
        )
        assert lint_paths([module], DEFAULT_RULES).findings == []


class TestPragmaMechanics:
    def test_pragma_without_reason_is_rep100(self, tmp_path):
        module = tmp_path / "noreason.py"
        module.write_text(
            "def f(task):\n"
            "    try:\n"
            "        return task()\n"
            "    except Exception:  # repro-lint: broad-except-ok\n"
            "        return None\n"
        )
        findings = lint_paths([module], DEFAULT_RULES).findings
        # The missing-reason pragma is flagged AND does not suppress.
        assert sorted(rules_of(findings)) == ["REP100", "REP105"]

    def test_unknown_slug_is_rep100(self, tmp_path):
        module = tmp_path / "unknown.py"
        module.write_text("x = 1  # repro-lint: no-such-rule because reasons\n")
        findings = lint_paths([module], DEFAULT_RULES).findings
        assert rules_of(findings) == ["REP100"]
        assert "unknown" in findings[0].message

    def test_wrong_slug_does_not_suppress(self, tmp_path):
        module = tmp_path / "wrong.py"
        module.write_text(
            "def f(task):\n"
            "    try:\n"
            "        return task()\n"
            "    # repro-lint: exact-ok wrong rule for this finding\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert rules_of(lint_paths([module], DEFAULT_RULES).findings) == ["REP105"]

    def test_rule_code_works_as_slug(self, tmp_path):
        module = tmp_path / "bycode.py"
        module.write_text(
            "def f(task):\n"
            "    try:\n"
            "        return task()\n"
            "    # repro-lint: REP105 cleanup helper must never propagate\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert lint_paths([module], DEFAULT_RULES).findings == []

    def test_pragma_in_docstring_is_inert(self, tmp_path):
        module = tmp_path / "docstring.py"
        module.write_text(
            '"""Docs may show ``# repro-lint: exact-ok like this`` safely."""\n'
            "x = 1\n"
        )
        assert lint_paths([module], DEFAULT_RULES).findings == []

    def test_suppressed_findings_are_tracked_separately(self, tmp_path):
        module = tmp_path / "tracked.py"
        module.write_text(
            "def f(task):\n"
            "    try:\n"
            "        return task()\n"
            "    # repro-lint: broad-except-ok teardown-safe cleanup\n"
            "    except Exception:\n"
            "        return None\n"
        )
        context = load_module(module, "tracked.py")
        active, suppressed = run_rules(context, DEFAULT_RULES)
        assert active == []
        assert rules_of(suppressed) == ["REP105"]


def test_every_rule_has_distinct_code_and_slug():
    codes = [rule.code for rule in DEFAULT_RULES]
    slugs = [rule.slug for rule in DEFAULT_RULES]
    assert len(set(codes)) == len(codes) == 5
    assert len(set(slugs)) == len(slugs) == 5
    assert codes == ["REP101", "REP102", "REP103", "REP104", "REP105"]
