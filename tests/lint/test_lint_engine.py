"""Engine-level tests: fingerprints, baseline round-trips, CLI, shipped tree."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (
    DEFAULT_BASELINE,
    DEFAULT_RULES,
    Baseline,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    save_baseline,
)
from repro.lint.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = (
    "def f(task):\n"
    "    try:\n"
    "        return task()\n"
    "    except Exception:\n"
    "        return None\n"
)


def write_module(tmp_path: Path, name: str, source: str) -> Path:
    path = tmp_path / name
    path.write_text(source)
    return path


class TestFingerprints:
    def test_stable_under_unrelated_line_shifts(self, tmp_path):
        module = write_module(tmp_path, "shift.py", BAD_SOURCE)
        before = lint_paths([module], DEFAULT_RULES, root=tmp_path).findings
        module.write_text("import os\n\n\n" + BAD_SOURCE)
        after = lint_paths([module], DEFAULT_RULES, root=tmp_path).findings
        assert before[0].line != after[0].line
        assert before[0].fingerprint == after[0].fingerprint

    def test_distinct_for_identical_findings(self, tmp_path):
        # Two textually identical violations in one scope disambiguate by
        # ordinal, so baselining one does not hide the other.
        module = write_module(
            tmp_path,
            "twins.py",
            "def f(a, b):\n"
            "    try:\n"
            "        return a()\n"
            "    except Exception:\n"
            "        pass\n"
            "    try:\n"
            "        return b()\n"
            "    except Exception:\n"
            "        pass\n",
        )
        findings = lint_paths([module], DEFAULT_RULES, root=tmp_path).findings
        assert len(findings) == 2
        assert findings[0].fingerprint != findings[1].fingerprint

    def test_depends_on_path_and_rule(self, tmp_path):
        first = write_module(tmp_path, "one.py", BAD_SOURCE)
        second = write_module(tmp_path, "two.py", BAD_SOURCE)
        findings = lint_paths([first, second], DEFAULT_RULES, root=tmp_path).findings
        assert findings[0].fingerprint != findings[1].fingerprint


class TestBaseline:
    def test_round_trip(self, tmp_path):
        module = write_module(tmp_path, "debt.py", BAD_SOURCE)
        findings = lint_paths([module], DEFAULT_RULES, root=tmp_path).findings
        baseline_path = tmp_path / "baseline.json"
        save_baseline(Baseline.from_findings(findings), baseline_path)
        loaded = load_baseline(baseline_path)
        assert len(loaded) == 1
        split = loaded.split(findings)
        assert split.new == [] and len(split.baselined) == 1 and split.stale == []

    def test_new_findings_are_not_masked(self, tmp_path):
        module = write_module(tmp_path, "debt.py", BAD_SOURCE)
        findings = lint_paths([module], DEFAULT_RULES, root=tmp_path).findings
        baseline = Baseline.from_findings(findings)
        module.write_text(BAD_SOURCE + "\n\ndef g(t):\n    return t.astype(float)\n")
        # The file is outside a repro tree so REP101 applies; the new cast
        # must surface even though the old REP105 stays baselined.
        updated = lint_paths([module], DEFAULT_RULES, root=tmp_path).findings
        split = baseline.split(updated)
        assert [f.rule for f in split.new] == ["REP101"]
        assert [f.rule for f in split.baselined] == ["REP105"]

    def test_stale_entries_are_detected(self, tmp_path):
        module = write_module(tmp_path, "debt.py", BAD_SOURCE)
        findings = lint_paths([module], DEFAULT_RULES, root=tmp_path).findings
        baseline = Baseline.from_findings(findings)
        module.write_text("def f(task):\n    return task()\n")
        clean = lint_paths([module], DEFAULT_RULES, root=tmp_path).findings
        split = baseline.split(clean)
        assert split.new == [] and split.baselined == []
        assert split.stale == [findings[0].fingerprint]

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert len(load_baseline(tmp_path / "absent.json")) == 0

    def test_malformed_file_raises(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("[1, 2, 3]")
        with pytest.raises(ValueError):
            load_baseline(bogus)


class TestReporters:
    def _split(self, tmp_path):
        module = write_module(tmp_path, "debt.py", BAD_SOURCE)
        result = lint_paths([module], DEFAULT_RULES, root=tmp_path)
        return result, Baseline().split(result.findings)

    def test_text_report_lists_findings_and_summary(self, tmp_path):
        result, split = self._split(tmp_path)
        report = render_text(result, split)
        assert "REP105" in report
        assert "1 new finding(s)" in report

    def test_json_report_is_machine_readable(self, tmp_path):
        result, split = self._split(tmp_path)
        payload = json.loads(render_json(result, split, baseline_path="b.json"))
        assert payload["tool"] == "repro-lint"
        assert payload["summary"]["new"] == 1
        assert payload["summary"]["by_rule"] == {"REP105": 1}
        assert payload["findings"][0]["rule"] == "REP105"
        assert payload["baseline"] == "b.json"


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write_module(tmp_path, "clean.py", "def f():\n    return 1\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        write_module(tmp_path, "dirty.py", BAD_SOURCE)
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        assert "REP105" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        write_module(tmp_path, "dirty.py", BAD_SOURCE)
        assert lint_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1

    def test_update_then_check_baseline_cycle(self, tmp_path, capsys):
        module = write_module(tmp_path, "debt.py", BAD_SOURCE)
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(module), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert lint_main([str(module), "--baseline", str(baseline), "--check-baseline"]) == 0
        # Fixing the debt makes the baseline stale: --check-baseline fails
        # until --update-baseline drops the entry.
        module.write_text("def f(task):\n    return task()\n")
        assert lint_main([str(module), "--baseline", str(baseline), "--check-baseline"]) == 1
        assert lint_main([str(module), "--baseline", str(baseline), "--update-baseline"]) == 0
        assert lint_main([str(module), "--baseline", str(baseline), "--check-baseline"]) == 0
        capsys.readouterr()

    def test_syntax_error_exits_two(self, tmp_path, capsys):
        write_module(tmp_path, "broken.py", "def f(:\n")
        assert lint_main([str(tmp_path), "--no-baseline"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_output_file_written(self, tmp_path, capsys):
        write_module(tmp_path, "clean.py", "x = 1\n")
        report = tmp_path / "out" / "lint.json"
        assert (
            lint_main(
                [str(tmp_path), "--no-baseline", "--format", "json", "--output", str(report)]
            )
            == 0
        )
        assert json.loads(report.read_text())["tool"] == "repro-lint"
        capsys.readouterr()

    def test_main_cli_has_lint_subcommand(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        write_module(tmp_path, "clean.py", "x = 1\n")
        assert repro_main(["lint", str(tmp_path), "--no-baseline"]) == 0
        capsys.readouterr()


class TestShippedTree:
    """The acceptance-criteria gate: the repository itself lints clean."""

    def test_src_is_clean_against_committed_baseline(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        exit_code = lint_main(["src", "--check-baseline"])
        output = capsys.readouterr().out
        assert exit_code == 0, f"repro-lint found new findings:\n{output}"

    def test_committed_baseline_has_no_stale_entries(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        baseline = load_baseline(REPO_ROOT / DEFAULT_BASELINE)
        result = lint_paths([Path("src")], DEFAULT_RULES, root=REPO_ROOT)
        split = baseline.split(result.findings)
        assert split.stale == [], (
            "baseline entries no longer produced by the tree; run "
            "`repro-4cycles lint src --update-baseline`"
        )

    def test_console_entry_point(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        completed = subprocess.run(
            [sys.executable, "-m", "repro.lint.cli", "src", "--format", "json"],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert completed.returncode == 0, completed.stdout + completed.stderr
        payload = json.loads(completed.stdout)
        assert payload["summary"]["new"] == 0
