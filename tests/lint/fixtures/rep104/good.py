"""REP104 fixture: module-level tasks and annotated exceptions (silent)."""


def run_shard_task(shard):
    return shard * 2


class Engine:
    def run(self, pool, shards):
        futures = [pool.submit(run_shard_task, shard) for shard in shards]
        mapped = pool.map(run_shard_task, shards)
        # repro-lint: shard-ok this helper only ever runs on the thread policy
        probe = pool.submit(lambda: 1)
        return futures, mapped, probe

    def not_a_pool(self, queue, shards):
        # Receiver does not look like a pool/executor: out of scope.
        return queue.map(lambda s: s, shards)
