"""REP104 fixture: unpicklable callables handed to pools (should fire 3x)."""


class Engine:
    def run(self, pool, shards):
        futures = [pool.submit(lambda s: s * 2, shard) for shard in shards]  # finding

        def local_task(shard):
            return shard * 2

        mapped = pool.map(local_task, shards)       # finding: closure
        bound = pool.submit(self._task, shards[0])  # finding: bound method
        return futures, mapped, bound

    def _task(self, shard):
        return shard
