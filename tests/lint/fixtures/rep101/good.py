"""REP101 fixture: every float cast is guarded or pragma-annotated (silent)."""

import numpy as np

_FLOAT64_EXACT_BOUND = float(2**53)


def guarded_by_bound_name(left, right):
    worst_case = float(left.max()) * float(right.max()) * left.shape[1]
    if worst_case < _FLOAT64_EXACT_BOUND:
        return left.astype(np.float64) @ right.astype(np.float64)
    return left @ right


def guarded_by_literal(counts):
    if int(counts.max()) < 2**53:
        return counts.astype(np.float64)
    return counts


def guarded_by_guard_variable(keys, values, cells):
    merge_possible = int(np.abs(values).max(initial=0)) * len(values) < _FLOAT64_EXACT_BOUND
    if merge_possible:
        return np.bincount(keys, weights=values, minlength=cells)
    return None


def pragma_annotated(scores):
    # repro-lint: exact-ok scores are already float measurements, not counts
    return scores.astype(np.float64)


def scalar_float_is_fine(m, eps):
    return float(m) ** (2.0 / 3.0 - eps)
