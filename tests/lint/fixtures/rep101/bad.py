"""REP101 fixture: unguarded float casts on count arrays (all should fire)."""

import numpy as np


def unguarded_astype(counts):
    return counts.astype(np.float64)          # finding: astype cast


def unguarded_constructor(total):
    return np.float64(total)                  # finding: np.float64() cast


def unguarded_dtype_keyword(n):
    return np.zeros(n, dtype=float)           # finding: dtype=float construction


def unguarded_bincount(keys, values):
    return np.bincount(keys, weights=values)  # finding: float64 accumulation
