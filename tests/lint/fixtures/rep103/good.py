"""REP103 fixture: hot function on arrays, cold function on dicts (silent)."""

import numpy as np


class Counter:
    def _batch_hook(self, rows, cols, signs):
        # Int-indexed array work is exactly what the rule wants hot paths on.
        deltas = np.bincount(rows, minlength=8)
        empty = {}  # empty dict literal: allocation only, no label traffic
        return deltas, empty

    def summarize(self, per_label):
        # Not a registered hot path: dict work is fine here.
        return {label: count for label, count in per_label.items()}

    def _batch_hook_metrics(self, timings):
        # Name does not match the manifest (``_batch_hook`` exactly).
        return dict(timings)
