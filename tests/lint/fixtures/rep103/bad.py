"""REP103 fixture: label-dict work inside a hot function (should fire 4x)."""


class Counter:
    def _batch_hook(self, updates):
        per_label = {u: 1 for u in updates}           # finding: dict comprehension
        extra = dict(per_label)                       # finding: dict() construction
        table = {"a": 1}                              # finding: dict literal
        total = 0
        for key, value in per_label.items():          # finding: .items() iteration
            total += value
        return extra, table, total
