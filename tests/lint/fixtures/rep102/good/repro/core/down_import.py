"""REP102 fixture: ``core`` (layer 2) importing downward and lazily (silent)."""

from typing import TYPE_CHECKING

from repro.exceptions import ReproError          # core -> exceptions: downward
from repro.graph.dynamic_graph import DynamicGraph  # core -> graph: downward
from repro.matmul.engine import csr_spgemm          # core -> matmul: downward

if TYPE_CHECKING:
    from repro.api import EngineConfig           # annotation-only: ignored


def lazy_facade():
    # Function-local late import: the sanctioned cycle-breaking idiom.
    from repro.api import available_counter_names

    return available_counter_names()


def use(config: "EngineConfig"):
    return ReproError, DynamicGraph, csr_spgemm, config
