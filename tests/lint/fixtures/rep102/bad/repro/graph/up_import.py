"""REP102 fixture: ``graph`` (layer 0) importing upward (should fire twice)."""

from repro.core.base import DynamicFourCycleCounter  # finding: graph -> core

import repro.api  # finding: graph -> api


def use():
    return DynamicFourCycleCounter, repro.api
