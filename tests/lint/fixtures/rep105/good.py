"""REP105 fixture: narrow, re-raising, or justified handlers (silent)."""


def narrow(task):
    try:
        return task()
    except (ValueError, KeyError):
        return None


def reraise_with_context(task):
    try:
        return task()
    except Exception as error:
        raise RuntimeError("task failed") from error


def justified(task):
    try:
        return task()
    # repro-lint: broad-except-ok destructor-style cleanup must never propagate
    except Exception:
        return None
