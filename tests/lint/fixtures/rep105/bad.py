"""REP105 fixture: silently swallowing broad handlers (should fire 3x)."""


def swallow_exception(task):
    try:
        return task()
    except Exception:      # finding: broad except, no re-raise
        return None


def swallow_bare(task):
    try:
        return task()
    except:                # noqa: E722  finding: bare except
        return None


def swallow_base(task):
    try:
        return task()
    except BaseException:  # finding: even broader
        return None
