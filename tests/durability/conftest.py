"""Chaos-suite plumbing: seed matrix and the CI recovery-report artifact.

``REPRO_CHAOS_SEEDS`` (comma-separated integers, default ``"0"``) widens the
deterministic fault schedules the chaos tests run under — CI sweeps a fixed
matrix, a developer reproducing a CI failure exports the one failing seed.
``REPRO_CHAOS_REPORT`` (a path) makes the session write every chaos case's
fault schedule and recovery report there as JSON, which CI uploads as an
artifact.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List

import pytest


def chaos_seeds() -> List[int]:
    raw = os.environ.get("REPRO_CHAOS_SEEDS", "0")
    seeds = [int(part) for part in raw.split(",") if part.strip()]
    return seeds or [0]


_REPORT_ROWS: List[Dict[str, object]] = []


@pytest.fixture
def chaos_report():
    """Append one JSON-friendly row per chaos case; written at session end."""
    return _REPORT_ROWS.append


def pytest_sessionfinish(session, exitstatus):
    target = os.environ.get("REPRO_CHAOS_REPORT")
    if not target or not _REPORT_ROWS:
        return
    payload = {
        "seeds": chaos_seeds(),
        "exit_status": int(exitstatus),
        "cases": list(_REPORT_ROWS),
    }
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
