"""The fault injector: deterministic schedules, charges, and validation."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    ACTION_CRASH,
    ACTION_KILL_WORKER,
    ACTION_TORN_WRITE,
    ACTION_TRANSIENT_ERROR,
    SITE_EXECUTOR_TASK,
    SITE_WAL_APPEND,
    Fault,
    FaultInjector,
    derived_seed,
)


class TestFaultValidation:
    def test_unknown_site(self):
        with pytest.raises(ConfigurationError, match="site"):
            Fault("wal.rename", ACTION_CRASH)

    def test_action_invalid_at_site(self):
        # kill-worker only makes sense for executor tasks, not WAL appends.
        with pytest.raises(ConfigurationError, match="not valid at site"):
            Fault(SITE_WAL_APPEND, ACTION_KILL_WORKER)

    def test_negative_occurrence(self):
        with pytest.raises(ConfigurationError, match="occurrence"):
            Fault(SITE_WAL_APPEND, ACTION_CRASH, at=-1)

    def test_times_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="times"):
            Fault(SITE_WAL_APPEND, ACTION_CRASH, times=0)


class TestDeterminism:
    def test_unpinned_occurrence_is_seed_stable(self):
        schedule = [Fault(SITE_WAL_APPEND, ACTION_TORN_WRITE, at=None, horizon=100)]
        first = FaultInjector(schedule, seed=42)
        second = FaultInjector(schedule, seed=42)
        assert first.faults[0].at == second.faults[0].at
        assert 0 <= first.faults[0].at < 100

    def test_different_seeds_draw_different_points(self):
        schedule = [Fault(SITE_WAL_APPEND, ACTION_TORN_WRITE, at=None, horizon=10_000)]
        points = {FaultInjector(schedule, seed=seed).faults[0].at for seed in range(8)}
        assert len(points) > 1

    def test_derived_seed_is_hash_free_stable(self):
        # Pinned value: zlib.crc32 is process- and platform-independent,
        # unlike salted str hashing.
        assert derived_seed(1, "a", 2) == derived_seed(1, "a", 2)
        assert derived_seed(1, "a") != derived_seed(2, "a")

    def test_two_injectors_fire_identically(self):
        schedule = [
            Fault(SITE_WAL_APPEND, ACTION_CRASH, at=None, horizon=20),
            Fault(SITE_EXECUTOR_TASK, ACTION_TRANSIENT_ERROR, at=None, horizon=20),
        ]
        first, second = FaultInjector(schedule, seed=9), FaultInjector(schedule, seed=9)
        for injector in (first, second):
            for _ in range(25):
                injector.check(SITE_WAL_APPEND)
                injector.check(SITE_EXECUTOR_TASK)
        assert first.fired == second.fired
        assert first.fired


class TestCharges:
    def test_one_shot_fires_exactly_once(self):
        injector = FaultInjector([Fault(SITE_WAL_APPEND, ACTION_CRASH, at=2)])
        hits = [injector.check(SITE_WAL_APPEND) for _ in range(6)]
        assert [hit is not None for hit in hits] == [False, False, True, False, False, False]
        assert injector.exhausted

    def test_times_arms_consecutive_occurrences(self):
        injector = FaultInjector([Fault(SITE_WAL_APPEND, ACTION_CRASH, at=1, times=3)])
        hits = [injector.check(SITE_WAL_APPEND) is not None for _ in range(6)]
        assert hits == [False, True, True, True, False, False]

    def test_sites_are_independent_counters(self):
        injector = FaultInjector([Fault(SITE_EXECUTOR_TASK, ACTION_TRANSIENT_ERROR, at=0)])
        assert injector.check(SITE_WAL_APPEND) is None
        assert injector.check(SITE_EXECUTOR_TASK) is not None
        assert injector.occurrences(SITE_WAL_APPEND) == 1
        assert injector.occurrences(SITE_EXECUTOR_TASK) == 1


class TestDescribe:
    def test_describe_is_json_friendly(self):
        import json

        injector = FaultInjector(
            [Fault(SITE_WAL_APPEND, ACTION_TORN_WRITE, at=0, payload={"keep_bytes": 3})],
            seed=5,
        )
        injector.check(SITE_WAL_APPEND)
        payload = json.loads(json.dumps(injector.describe()))
        assert payload["seed"] == 5
        assert payload["faults"][0]["action"] == ACTION_TORN_WRITE
        assert payload["fired"][0]["occurrence"] == 0
        assert payload["exhausted"] is True
