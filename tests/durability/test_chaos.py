"""The chaos suite: every counter x every fault class recovers bit-identically.

Each case builds a reference (uninterrupted) count trajectory, runs a durable
engine under a deterministic fault schedule until the injected crash, recovers
from the log, and asserts two things:

* the recovered count equals the reference count at the durable prefix, and
* replaying the rest of the stream through the recovered engine reproduces
  the reference trajectory entry for entry.

The executor half injects worker kills and transient errors into the
shard-parallel SpGEMM path and asserts the product stays exact while the
executor retries or degrades — never raising to the caller.

Seeds come from ``REPRO_CHAOS_SEEDS`` (see ``conftest.py``); each case's fault
schedule and recovery report go into the ``REPRO_CHAOS_REPORT`` artifact.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, FourCycleEngine, available_counter_names
from repro.durability import recover
from repro.exceptions import InjectedCrashError
from repro.faults import (
    ACTION_CORRUPT_RECORD,
    ACTION_CRASH,
    ACTION_KILL_WORKER,
    ACTION_TORN_WRITE,
    ACTION_TRANSIENT_ERROR,
    SITE_EXECUTOR_TASK,
    SITE_SNAPSHOT_WRITE,
    SITE_WAL_APPEND,
    Fault,
    FaultInjector,
)
from tests.conftest import random_dynamic_stream
from tests.durability.conftest import chaos_seeds

STREAM_LENGTH = 70

#: One deterministic schedule per fault class; the unpinned ``at`` indices
#: resolve from the injector's seed, so every seed crashes somewhere else.
FAULT_CLASSES = {
    "wal-crash": [Fault(SITE_WAL_APPEND, ACTION_CRASH, at=None, horizon=60)],
    "wal-crash-after-write": [
        Fault(SITE_WAL_APPEND, ACTION_CRASH, at=None, horizon=60, payload={"when": "after"})
    ],
    "wal-torn-write": [Fault(SITE_WAL_APPEND, ACTION_TORN_WRITE, at=None, horizon=60)],
    "wal-corrupt-record": [Fault(SITE_WAL_APPEND, ACTION_CORRUPT_RECORD, at=None, horizon=60)],
    "snapshot-torn-write": [Fault(SITE_SNAPSHOT_WRITE, ACTION_TORN_WRITE, at=None, horizon=2)],
}


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize("fault_class", sorted(FAULT_CLASSES))
@pytest.mark.parametrize("counter", sorted(available_counter_names()))
def test_recovery_is_bit_identical(counter, fault_class, seed, tmp_path, chaos_report):
    updates = list(
        random_dynamic_stream(num_vertices=10, num_updates=STREAM_LENGTH, seed=seed)
    )
    reference = FourCycleEngine(counter)
    trajectory = [reference.apply(update) for update in updates]

    injector = FaultInjector(FAULT_CLASSES[fault_class], seed=seed)
    wal = tmp_path / "chaos.wal"
    config = EngineConfig(counter=counter, wal_path=str(wal), snapshot_every=20)
    engine = FourCycleEngine(config, fault_injector=injector)
    crashed = False
    try:
        for update in updates:
            engine.apply(update)
    except InjectedCrashError:
        crashed = True
    assert crashed, "the scheduled fault must fire within the stream"

    recovered, report = recover(wal)
    durable = report.last_seq + 1
    assert 0 <= durable <= len(updates)
    expected = trajectory[durable - 1] if durable else 0
    assert recovered.count == expected, (
        f"recovered count diverged at the durable prefix "
        f"({fault_class}, seed {seed})"
    )
    for index in range(durable, len(updates)):
        assert recovered.apply(updates[index]) == trajectory[index], (
            f"post-recovery trajectory diverged at update {index} "
            f"({fault_class}, seed {seed})"
        )
    assert recovered.count == trajectory[-1]
    assert recovered.is_consistent()
    recovered.close()

    chaos_report(
        {
            "counter": counter,
            "fault_class": fault_class,
            "seed": seed,
            "schedule": injector.describe(),
            "recovery": report.to_dict(),
            "final_count": recovered.count,
        }
    )


@pytest.mark.parametrize("seed", chaos_seeds())
@pytest.mark.parametrize(
    "action", [ACTION_KILL_WORKER, ACTION_TRANSIENT_ERROR], ids=["kill-worker", "transient"]
)
def test_executor_completes_under_task_faults(action, seed, tmp_path, chaos_report):
    import numpy as np

    from repro.matmul.sharding import ShardExecutor
    from repro.matmul.engine import CsrMatrix, csr_spgemm

    rng = np.random.default_rng(seed)
    mask = rng.random((32, 32)) < 0.3
    rows, cols = np.nonzero(mask)
    values = rng.integers(1, 5, size=len(rows), dtype=np.int64)
    left = CsrMatrix.from_coo(rows, cols, values, 32, 32)
    right = CsrMatrix.from_coo(cols, rows, values, 32, 32)
    serial = csr_spgemm(left, right)

    injector = FaultInjector(
        [Fault(SITE_EXECUTOR_TASK, action, at=None, horizon=4)], seed=seed
    )
    executor = ShardExecutor(
        workers=2, policy="process", min_shard_work=1, injector=injector
    )
    try:
        product, work = executor.spgemm(left, right)
    finally:
        executor.close()
    assert injector.fired, "the scheduled task fault must fire"
    reference, reference_work = serial
    assert work == reference_work
    np.testing.assert_array_equal(product.indptr, reference.indptr)
    np.testing.assert_array_equal(product.cols, reference.cols)
    np.testing.assert_array_equal(product.data, reference.data)

    chaos_report(
        {
            "counter": None,
            "fault_class": f"executor-{action}",
            "seed": seed,
            "schedule": injector.describe(),
            "degradations": list(executor.degradations),
        }
    )
