"""The write-ahead log: codec, scan/replay semantics, and the writer.

The load-bearing contracts: a WAL file is simultaneously a valid
``ReplaySource`` stream; a torn *final* record is forgiven (and truncated on
reopen) while damage anywhere else raises; sequence numbers are contiguous
and survive rollback, compaction, and reopen.
"""

from __future__ import annotations

import json

import pytest

from repro.api.sources import ReplaySource
from repro.durability.wal import (
    WriteAheadLog,
    decode_wal_record,
    encode_wal_record,
    load_wal_meta,
    replay_wal,
    save_wal_meta,
    scan_wal,
    wal_meta_path,
)
from repro.exceptions import ConfigurationError, WalCorruptionError
from repro.graph.updates import EdgeUpdate


def some_updates(n: int = 6) -> list:
    updates = []
    for index in range(n):
        constructor = EdgeUpdate.insert if index % 3 else EdgeUpdate.delete
        if index % 3 == 0:
            constructor = EdgeUpdate.insert
        updates.append(constructor(index, index + 1))
    return updates


class TestRecordCodec:
    def test_roundtrip(self):
        update = EdgeUpdate.insert("a", "b")
        seq, decoded = decode_wal_record(encode_wal_record(update, 7).decode())
        assert seq == 7
        assert decoded == update

    def test_crc_catches_a_flipped_byte(self):
        line = bytearray(encode_wal_record(EdgeUpdate.insert(1, 2), 0))
        line[len(line) // 2] ^= 0x01
        with pytest.raises(WalCorruptionError, match="CRC|JSON|crc"):
            decode_wal_record(line.decode("utf-8", errors="replace"))

    def test_missing_crc_rejected(self):
        bare = json.dumps({"u": 1, "v": 2, "kind": "insert", "seq": 0})
        with pytest.raises(WalCorruptionError, match="crc"):
            decode_wal_record(bare)


class TestWriter:
    def test_append_then_scan(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            seqs = wal.append_batch(some_updates(5))
            wal.commit()
        assert seqs == [0, 1, 2, 3, 4]
        scan = scan_wal(path)
        assert (scan.first_seq, scan.last_seq, scan.num_records) == (0, 4, 5)
        assert not scan.torn_tail

    def test_wal_file_is_a_valid_replay_source(self, tmp_path):
        path = tmp_path / "log.wal"
        updates = some_updates(5)
        with WriteAheadLog(path) as wal:
            wal.append_batch(updates)
            wal.commit()
        assert list(ReplaySource(path)) == updates

    def test_reopen_continues_the_sequence(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append(EdgeUpdate.insert(0, 1))
        with WriteAheadLog(path) as wal:
            assert wal.last_seq == 0
            assert wal.append(EdgeUpdate.insert(1, 2)) == 1
        assert [seq for seq, _ in replay_wal(path)] == [0, 1]

    def test_reopen_truncates_a_torn_tail(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(some_updates(3))
        whole = path.read_bytes()
        path.write_bytes(whole + b'{"u": 9, "v": 10, "ki')
        wal = WriteAheadLog(path)
        assert wal.reopened_torn_tail
        assert wal.last_seq == 2
        wal.close()
        assert path.read_bytes() == whole

    def test_mid_file_corruption_raises_on_reopen(self, tmp_path):
        path = tmp_path / "log.wal"
        with WriteAheadLog(path) as wal:
            wal.append_batch(some_updates(4))
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"torn": tru\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(WalCorruptionError):
            WriteAheadLog(path)
        with pytest.raises(WalCorruptionError):
            scan_wal(path)

    def test_sequence_gap_is_corruption(self, tmp_path):
        path = tmp_path / "log.wal"
        with path.open("wb") as handle:
            handle.write(encode_wal_record(EdgeUpdate.insert(0, 1), 0))
            handle.write(encode_wal_record(EdgeUpdate.insert(1, 2), 5))
        with pytest.raises(WalCorruptionError, match="gap"):
            scan_wal(path)

    def test_truncate_to_seq_rolls_back(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        wal.append_batch(some_updates(6))
        wal.truncate_to_seq(2)
        assert wal.last_seq == 2
        assert [seq for seq, _ in replay_wal(path)] == [0, 1, 2]
        # The writer resumes exactly after the kept prefix.
        assert wal.append(EdgeUpdate.insert(50, 51)) == 3
        wal.close()

    def test_truncate_after_compaction_keeps_the_sequence(self, tmp_path):
        # A rollback on a freshly compacted (empty) log must continue the
        # sequence from the rollback point, not restart at zero — restarting
        # would put later records below the snapshot's wal_seq, and recovery
        # would silently skip them.
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        wal.append_batch(some_updates(4))
        wal.compact(keep_after_seq=3)
        assert wal.append(EdgeUpdate.insert(70, 71)) == 4
        wal.truncate_to_seq(3)
        assert wal.last_seq == 3
        assert wal.append(EdgeUpdate.insert(80, 81)) == 4
        wal.close()
        assert [seq for seq, _ in replay_wal(path)] == [4]

    def test_compact_preserves_sequence_numbers(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path)
        wal.append_batch(some_updates(6))
        kept = wal.compact(keep_after_seq=3)
        assert kept == 2
        assert [seq for seq, _ in replay_wal(path)] == [4, 5]
        assert wal.append(EdgeUpdate.insert(60, 61)) == 6
        wal.close()
        reopened = WriteAheadLog(path)
        assert reopened.last_seq == 6
        reopened.close()

    def test_min_next_seq_floors_an_empty_log(self, tmp_path):
        path = tmp_path / "log.wal"
        wal = WriteAheadLog(path, min_next_seq=10)
        assert wal.append(EdgeUpdate.insert(0, 1)) == 10
        wal.close()

    def test_invalid_fsync_policy(self, tmp_path):
        with pytest.raises(ConfigurationError, match="fsync_policy"):
            WriteAheadLog(tmp_path / "log.wal", fsync_policy="sometimes")

    @pytest.mark.parametrize("policy", ["always", "batch", "never"])
    def test_every_policy_writes_identical_bytes(self, tmp_path, policy):
        path = tmp_path / f"{policy}.wal"
        with WriteAheadLog(path, fsync_policy=policy) as wal:
            wal.append_batch(some_updates(4))
            wal.commit()
        reference = b"".join(
            encode_wal_record(update, seq) for seq, update in enumerate(some_updates(4))
        )
        assert path.read_bytes() == reference

    def test_close_is_idempotent_and_blocks_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "log.wal")
        wal.close()
        wal.close()
        with pytest.raises(ConfigurationError, match="closed"):
            wal.append(EdgeUpdate.insert(0, 1))


class TestFsyncAccounting:
    @pytest.fixture
    def fsync_calls(self, monkeypatch):
        import os

        calls = []
        real = os.fsync

        def counting_fsync(fd):
            calls.append(fd)
            return real(fd)

        monkeypatch.setattr(os, "fsync", counting_fsync)
        return calls

    def test_always_policy_syncs_once_per_update(self, tmp_path, fsync_calls):
        # append() already synced, so the engine's per-update commit() must
        # not pay a second fsync.
        with WriteAheadLog(tmp_path / "log.wal", fsync_policy="always") as wal:
            wal.append(EdgeUpdate.insert(0, 1))
            wal.commit()
            assert len(fsync_calls) == 1

    def test_commit_is_a_noop_when_clean(self, tmp_path, fsync_calls):
        with WriteAheadLog(tmp_path / "log.wal", fsync_policy="batch") as wal:
            wal.append(EdgeUpdate.insert(0, 1))
            wal.commit()
            wal.commit()
            assert len(fsync_calls) == 1

    def test_compact_respects_the_never_policy(self, tmp_path, fsync_calls):
        wal = WriteAheadLog(tmp_path / "log.wal", fsync_policy="never")
        wal.append_batch(some_updates(4))
        wal.compact(keep_after_seq=1)
        # Only the atomic-rewrite tmp file is synced; the live log never is.
        assert len(fsync_calls) == 1
        wal.close()
        assert len(fsync_calls) == 1


class TestMetaSidecar:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "log.wal"
        config = {"counter": "wedge", "batch_size": 3}
        save_wal_meta(path, config)
        assert wal_meta_path(path).exists()
        assert load_wal_meta(path) == config

    def test_absent_is_none(self, tmp_path):
        assert load_wal_meta(tmp_path / "log.wal") is None

    def test_malformed_raises(self, tmp_path):
        path = tmp_path / "log.wal"
        wal_meta_path(path).write_text("not json", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="JSON"):
            load_wal_meta(path)


class TestReplaySourceTornTail:
    def test_strict_mode_raises_with_location(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"u": 1, "v": 2, "kind": "insert"}\n{"u": 3, "v":', encoding="utf-8")
        with pytest.raises(ConfigurationError, match=r"stream\.jsonl:2"):
            list(ReplaySource(path))

    def test_tolerant_mode_stops_at_the_torn_final_record(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"u": 1, "v": 2, "kind": "insert"}\n{"u": 3, "v":', encoding="utf-8")
        assert list(ReplaySource(path, tolerate_torn_tail=True)) == [EdgeUpdate.insert(1, 2)]

    def test_tolerant_mode_still_rejects_mid_file_damage(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text(
            '{"u": 1, "v": 2, "kind": "insert"}\n'
            "garbage\n"
            '{"u": 3, "v": 4, "kind": "insert"}\n',
            encoding="utf-8",
        )
        with pytest.raises(ConfigurationError, match=r"stream\.jsonl:2"):
            list(ReplaySource(path, tolerate_torn_tail=True))
