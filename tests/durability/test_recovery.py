"""Engine durability integration and the recovery entry point.

The contract: a durable engine's count trajectory is identical to a plain
engine's; after any crash, :func:`repro.durability.recover` rebuilds an
engine whose count equals the uninterrupted run over the durable prefix and
whose subsequent trajectory is bit-identical.
"""

from __future__ import annotations

import pytest

from repro.api import EngineConfig, FourCycleEngine
from repro.durability import (
    latest_valid_snapshot,
    list_snapshot_paths,
    recover,
    scan_wal,
)
from repro.durability.wal import encode_wal_record, load_wal_meta, replay_wal
from repro.exceptions import (
    ConfigurationError,
    DuplicateEdgeError,
    InjectedCrashError,
    RecoverableEngineError,
)
from repro.faults import (
    ACTION_CRASH,
    ACTION_TORN_WRITE,
    SITE_SNAPSHOT_WRITE,
    SITE_WAL_APPEND,
    Fault,
    FaultInjector,
)
from repro.graph.updates import EdgeUpdate
from tests.conftest import random_dynamic_stream


def stream(seed: int = 0, n: int = 80):
    return list(random_dynamic_stream(num_vertices=10, num_updates=n, seed=seed))


class TestDurableRuns:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="snapshot_every requires wal_path"):
            EngineConfig(snapshot_every=5)
        with pytest.raises(ConfigurationError, match="fsync_policy"):
            EngineConfig(fsync_policy="later")

    def test_durable_trajectory_equals_plain(self, tmp_path):
        updates = stream()
        plain = FourCycleEngine("wedge")
        trajectory = [plain.apply(update) for update in updates]
        with FourCycleEngine(
            EngineConfig(counter="wedge", wal_path=str(tmp_path / "run.wal"))
        ) as durable:
            assert [durable.apply(update) for update in updates] == trajectory
            assert durable.last_durable_seq == len(updates) - 1

    def test_wal_records_match_applied_history(self, tmp_path):
        updates = stream(n=20)
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.run(updates)
        assert [update for _, update in replay_wal(wal)] == updates

    def test_constructor_refuses_an_existing_log(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.insert(0, 1)
        with pytest.raises(ConfigurationError, match="recover"):
            FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal)))

    def test_meta_sidecar_written_on_attach(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(
            EngineConfig(counter="wedge", batch_size=3, wal_path=str(wal))
        ):
            pass
        meta = load_wal_meta(wal)
        assert meta["counter"] == "wedge"
        assert meta["batch_size"] == 3
        assert meta["wal_path"] == str(wal)

    def test_rejected_update_is_rolled_back(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.insert(0, 1)
            with pytest.raises(DuplicateEdgeError):
                engine.insert(0, 1)
            # The engine is still usable and the bad record never became durable.
            engine.insert(1, 2)
            assert engine.last_durable_seq == 1
        assert [update for _, update in replay_wal(wal)] == [
            EdgeUpdate.insert(0, 1),
            EdgeUpdate.insert(1, 2),
        ]


class TestSnapshots:
    def test_periodic_generations_and_pruning(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(
            EngineConfig(counter="wedge", wal_path=str(wal), snapshot_every=20)
        ) as engine:
            engine.run(stream())
        generations = list_snapshot_paths(wal)
        # 80 records at cadence 20 = 4 snapshots, pruned to the newest 2.
        assert [seq for seq, _ in generations] == [59, 79]

    def test_checkpoint_embeds_wal_seq(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.run(stream(n=10))
            snapshot = engine.checkpoint()
        assert snapshot.wal_seq == 9
        plain = FourCycleEngine("wedge")
        assert plain.checkpoint().wal_seq is None

    def test_corrupt_newest_generation_falls_back(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(
            EngineConfig(counter="wedge", wal_path=str(wal), snapshot_every=20)
        ) as engine:
            final = engine.run(stream())
        newest = list_snapshot_paths(wal)[-1][1]
        newest.write_text(newest.read_text(encoding="utf-8")[:100], encoding="utf-8")
        seq, _, path = latest_valid_snapshot(wal)
        assert seq == 59 and path != newest
        engine, report = recover(wal, attach=False)
        assert engine.count == final
        assert report.snapshot_seq == 59

    def test_every_generation_corrupt_means_full_replay(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(
            EngineConfig(counter="wedge", wal_path=str(wal), snapshot_every=20)
        ) as engine:
            final = engine.run(stream())
        for _, path in list_snapshot_paths(wal):
            path.write_text("{}", encoding="utf-8")
        engine, report = recover(wal, attach=False)
        assert engine.count == final
        assert report.snapshot_path is None
        assert report.replayed_records == 80

    def test_restore_strips_durability_settings(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.run(stream(n=10))
            snapshot = engine.checkpoint()
        clone = FourCycleEngine.restore(snapshot)
        assert clone.config.wal_path is None
        assert clone.wal is None
        assert clone.count == snapshot.count


class TestRecovery:
    def test_recover_then_continue_matches_reference(self, tmp_path):
        updates = stream(seed=3, n=90)
        reference = FourCycleEngine("wedge")
        trajectory = [reference.apply(update) for update in updates]
        wal = tmp_path / "run.wal"
        with FourCycleEngine(
            EngineConfig(counter="wedge", wal_path=str(wal), snapshot_every=25)
        ) as engine:
            for update in updates[:60]:
                engine.apply(update)
        recovered, report = recover(wal)
        assert report.last_seq == 59
        assert recovered.count == trajectory[59]
        for index in range(60, len(updates)):
            assert recovered.apply(updates[index]) == trajectory[index]
        assert recovered.is_consistent()
        recovered.close()
        # The continuation is durable too: a second recovery sees all of it.
        final, second = recover(wal, attach=False)
        assert final.count == trajectory[-1]
        assert second.last_seq == len(updates) - 1

    def test_recover_without_snapshot_uses_the_meta_sidecar(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="hhh22", wal_path=str(wal))) as engine:
            final = engine.run(stream(n=30))
        recovered, report = recover(wal, attach=False)
        assert recovered.name == "hhh22"
        assert recovered.count == final
        assert report.snapshot_path is None

    def test_recover_without_any_config_raises(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.run(stream(n=10))
        from repro.durability.wal import wal_meta_path

        wal_meta_path(wal).unlink()
        with pytest.raises(ConfigurationError, match="pass config="):
            recover(wal)

    def test_explicit_counter_name_overrides(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            final = engine.run(stream(n=30))
        recovered, _ = recover(wal, config="brute-force", attach=False)
        assert recovered.name == "brute-force"
        assert recovered.count == final

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="does not exist"):
            recover(tmp_path / "nope.wal")

    def test_injected_crash_before_snapshot_loses_nothing(self, tmp_path):
        updates = stream(seed=5, n=60)
        reference = FourCycleEngine("wedge")
        trajectory = [reference.apply(update) for update in updates]
        wal = tmp_path / "run.wal"
        injector = FaultInjector([Fault(SITE_SNAPSHOT_WRITE, ACTION_CRASH, at=0)])
        engine = FourCycleEngine(
            EngineConfig(counter="wedge", wal_path=str(wal), snapshot_every=25),
            fault_injector=injector,
        )
        with pytest.raises(InjectedCrashError):
            for update in updates:
                engine.apply(update)
        recovered, report = recover(wal)
        # The crash hit the first snapshot point: the 25th record was durable
        # and applied, only the snapshot file itself is missing.
        assert report.snapshot_path is None
        assert report.last_seq == 24
        assert recovered.count == trajectory[report.last_seq]
        recovered.close()

    def test_injected_torn_snapshot_falls_back(self, tmp_path):
        updates = stream(seed=6, n=60)
        reference = FourCycleEngine("wedge")
        trajectory = [reference.apply(update) for update in updates]
        wal = tmp_path / "run.wal"
        injector = FaultInjector([Fault(SITE_SNAPSHOT_WRITE, ACTION_TORN_WRITE, at=1)])
        engine = FourCycleEngine(
            EngineConfig(counter="wedge", wal_path=str(wal), snapshot_every=20),
            fault_injector=injector,
        )
        with pytest.raises(InjectedCrashError):
            for update in updates:
                engine.apply(update)
        # The first generation landed; the second is torn on disk.
        assert len(list_snapshot_paths(wal)) == 2
        recovered, report = recover(wal)
        assert report.snapshot_seq == 19
        assert recovered.count == trajectory[39]
        recovered.close()


class TestFailStop:
    def _engine_with_poisoned_batch(self, tmp_path):
        wal = tmp_path / "run.wal"
        engine = FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal)))
        engine.insert(0, 1)
        return engine, wal

    def test_mid_batch_failure_is_fail_stop(self, tmp_path):
        engine, wal = self._engine_with_poisoned_batch(tmp_path)
        bad_batch = [EdgeUpdate.insert(1, 2), EdgeUpdate.insert(0, 1)]  # duplicate
        with pytest.raises(RecoverableEngineError) as excinfo:
            engine.apply_batch(bad_batch)
        assert excinfo.value.last_durable_seq == 0
        # The poisoned window was rolled back: the log equals applied history.
        assert [seq for seq, _ in replay_wal(wal)] == [0]
        # Every further mutation refuses with the same recovery pointer.
        with pytest.raises(RecoverableEngineError):
            engine.insert(5, 6)
        engine.close()

    def test_recovery_resumes_from_the_rollback_point(self, tmp_path):
        engine, wal = self._engine_with_poisoned_batch(tmp_path)
        with pytest.raises(RecoverableEngineError):
            engine.apply_batch([EdgeUpdate.insert(1, 2), EdgeUpdate.insert(0, 1)])
        engine.close()
        recovered, report = recover(wal)
        assert report.last_seq == 0
        assert recovered.num_edges == 1
        recovered.apply_batch([EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3)])
        assert recovered.is_consistent()
        recovered.close()


class TestRejectedTail:
    def _durable_pair(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.insert(0, 1)
            engine.insert(1, 2)
            final = engine.count
        return wal, final

    def test_committed_but_rejected_final_record_is_dropped(self, tmp_path):
        wal, final = self._durable_pair(tmp_path)
        # Simulate a crash between the WAL commit and the rollback truncate:
        # a record the counter rejected survives as the final log record.
        with wal.open("ab") as handle:
            handle.write(encode_wal_record(EdgeUpdate.insert(0, 1), 2))
        recovered, report = recover(wal)
        assert report.rejected_tail_dropped
        assert report.last_seq == 1
        assert report.replayed_records == 2
        assert recovered.count == final
        # The rejected record is gone from the log, the next update takes its
        # sequence number, and a second recovery sees a clean history.
        recovered.apply(EdgeUpdate.insert(2, 3))
        assert recovered.last_durable_seq == 2
        recovered.close()
        _, second = recover(wal, attach=False)
        assert not second.rejected_tail_dropped
        assert second.last_seq == 2

    def test_rejection_before_the_tail_still_raises(self, tmp_path):
        wal, _ = self._durable_pair(tmp_path)
        # Write-ahead order can only leave ONE rejected record, at the tail;
        # a rejection mid-log is real corruption and must propagate.
        with wal.open("ab") as handle:
            handle.write(encode_wal_record(EdgeUpdate.insert(0, 1), 2))
            handle.write(encode_wal_record(EdgeUpdate.insert(3, 4), 3))
        with pytest.raises(DuplicateEdgeError):
            recover(wal)


class TestCompaction:
    def test_compact_snapshots_then_empties_the_log(self, tmp_path):
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            final = engine.run(stream(n=40))
            assert engine.compact_wal() == 0
        assert scan_wal(wal).num_records == 0
        recovered, report = recover(wal, attach=False)
        assert recovered.count == final
        assert report.replayed_records == 0
        assert report.snapshot_seq == 39

    def test_rejected_update_after_compaction_keeps_the_sequence(self, tmp_path):
        # Regression: the rollback truncate on a freshly compacted (empty)
        # log must not reset the sequence counter to zero — later updates
        # would land below the snapshot's wal_seq and recovery would
        # silently skip them.
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.insert(0, 1)
            engine.insert(1, 2)
            engine.compact_wal()  # snapshot at seq 1, log now empty
            with pytest.raises(DuplicateEdgeError):
                engine.insert(0, 1)
            engine.insert(2, 3)
            assert engine.last_durable_seq == 2
            final = engine.count
        assert [seq for seq, _ in replay_wal(wal)] == [2]
        recovered, report = recover(wal, attach=False)
        assert report.replayed_records == 1
        assert report.last_seq == 2
        assert recovered.count == final
        assert recovered.num_edges == 3

    def test_appends_after_compaction_recover(self, tmp_path):
        updates = stream(seed=9, n=50)
        reference = FourCycleEngine("wedge")
        trajectory = [reference.apply(update) for update in updates]
        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            for update in updates[:30]:
                engine.apply(update)
            engine.compact_wal()
            for update in updates[30:]:
                engine.apply(update)
        recovered, report = recover(wal, attach=False)
        assert report.replayed_records == 20
        assert recovered.count == trajectory[-1]

    def test_cli_recover_reports_and_verifies(self, tmp_path, capsys):
        from repro.cli import main

        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            final = engine.run(stream(n=30))
        assert main(["recover", str(wal)]) == 0
        out = capsys.readouterr().out
        assert f"count           {final}" in out
        assert "consistent      yes" in out

    def test_cli_recover_compact(self, tmp_path, capsys):
        from repro.cli import main

        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.run(stream(n=30))
        assert main(["recover", str(wal), "--compact"]) == 0
        assert "compacted       log now holds 0 record(s)" in capsys.readouterr().out
        assert scan_wal(wal).num_records == 0

    def test_cli_recover_missing_log_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["recover", str(tmp_path / "nope.wal")]) == 1
        assert "recovery failed" in capsys.readouterr().err

    @pytest.mark.parametrize("failing_step", ["is_consistent", "compact_wal"])
    def test_cli_recover_closes_engine_on_raising_verification(
        self, tmp_path, capsys, monkeypatch, failing_step
    ):
        """Regression: the recovered engine (and its WAL fd) leaked when the
        consistency check or compaction raised after a successful recover."""
        import repro.durability as durability
        from repro.cli import main
        from repro.exceptions import CounterStateError

        wal = tmp_path / "run.wal"
        with FourCycleEngine(EngineConfig(counter="wedge", wal_path=str(wal))) as engine:
            engine.run(stream(n=20))

        captured = {}
        real_recover = durability.recover

        def capturing_recover(*args, **kwargs):
            recovered, report = real_recover(*args, **kwargs)
            captured["engine"] = recovered

            def raising(*_args, **_kwargs):
                raise CounterStateError("verification blew up")

            monkeypatch.setattr(recovered, failing_step, raising)
            return recovered, report

        monkeypatch.setattr(durability, "recover", capturing_recover)
        assert main(["recover", str(wal), "--compact"]) == 1
        assert "recovery failed: verification blew up" in capsys.readouterr().err
        assert captured["engine"].wal.closed
