"""Integration tests: whole-pipeline cross-validation (experiment E4 in miniature).

These exercise the full stack — workload generators, the harness, every
registered counter, the layered counter, and the IVM view — on the same data.
"""

from __future__ import annotations

import pytest

from repro.core.assadi_shah import AssadiShahThreePathOracle
from repro.core.layered import LayeredFourCycleCounter
from repro.api import available_counter_names
from repro.db.ivm import CyclicJoinCountView
from repro.graph.reduction import expand_general_update
from repro.instrumentation.harness import compare_counters, run_validated, summary_table
from repro.workloads.generators import stream_catalogue
from repro.workloads.join_workloads import random_join_workload

from tests.conftest import random_dynamic_stream


class TestAllCountersOnCatalogue:
    @pytest.mark.parametrize("workload_name", ["erdos-renyi", "power-law", "hubs"])
    def test_counters_agree_on_workload(self, workload_name):
        stream = stream_catalogue(scale=1, seed=3)[workload_name].prefix(120)
        results = compare_counters(sorted(available_counter_names()), stream)
        rows = summary_table(results)
        assert len(rows) == len(available_counter_names())
        finals = {result.final_count for result in results.values()}
        assert len(finals) == 1

    def test_validated_against_brute_force_on_churn(self):
        stream = stream_catalogue(scale=1, seed=5)["churn"].prefix(120)
        for name in sorted(available_counter_names()):
            if name == "brute-force":
                continue
            from repro.api import counter_spec

            assert run_validated(counter_spec(name).create(), stream).validated


class TestGeneralVersusLayeredPipeline:
    def test_layered_counter_tracks_closed_walks_of_reduction(self):
        """Driving the layered counter through the Section 8 reduction keeps
        its count equal to the general graph's closed-4-walk count, while the
        general counter keeps the exact 4-cycle count — the two views the
        paper's equivalence connects."""
        from repro.api import counter_spec
        from repro.graph.dynamic_graph import DynamicGraph
        from repro.graph.static_counts import count_closed_four_walks, count_four_cycles_trace

        stream = random_dynamic_stream(num_vertices=9, num_updates=80, seed=55)
        general = counter_spec("phase-fmm").create(phase_length=10)
        layered = LayeredFourCycleCounter(
            oracle_factory=lambda: AssadiShahThreePathOracle(phase_length=10)
        )
        mirror = DynamicGraph()
        for update in stream:
            general.apply(update)
            mirror.apply(update)
            for layered_update in expand_general_update(update):
                layered.apply(layered_update)
            assert general.count == count_four_cycles_trace(mirror)
            assert layered.count == count_closed_four_walks(mirror)


class TestDatabasePipeline:
    def test_ivm_view_matches_recomputation_on_random_workload(self):
        view = CyclicJoinCountView()
        workload = random_join_workload(domain_size=7, num_updates=220, seed=21)
        for index, update in enumerate(workload):
            view.apply(update)
            if index % 20 == 0:
                assert view.is_consistent()
        assert view.is_consistent()
