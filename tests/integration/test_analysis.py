"""Tests for the analysis (experiment) layer and report generation."""

from __future__ import annotations

import pytest

from repro.analysis import (
    banner,
    experiment_e1_theorem_constants,
    experiment_e2_warmup_constants,
    experiment_e3_constraint_verification,
    experiment_e4_cross_validation,
    experiment_e5_update_scaling,
    experiment_e6_worst_case,
    experiment_e7_ivm_join,
    experiment_e8_omega_ablation,
    experiment_e9_phase_ablation,
    markdown_table,
    rows_to_dicts,
    text_table,
)
from repro.analysis.document import build_experiments_markdown


class TestAnalyticExperiments:
    def test_e1_matches_published(self):
        rows = experiment_e1_theorem_constants()
        assert {row.regime for row in rows} == {"current", "best"}
        assert all(row.matches for row in rows)

    def test_e2_best_regime_matches(self):
        rows = experiment_e2_warmup_constants()
        best = next(row for row in rows if row.regime == "best")
        assert best.matches
        assert best.eps2_solved == pytest.approx(5 / 24, abs=1e-6)

    def test_e3_all_satisfied(self):
        rows = experiment_e3_constraint_verification()
        assert len(rows) == 16
        assert all(row.satisfied for row in rows)

    def test_e8_threshold(self):
        result = experiment_e8_omega_ablation(step=0.25)
        assert all(row.improves == (row.omega < 2.5) for row in result.rows)
        assert len(result.headline) == 4


class TestEmpiricalExperiments:
    def test_e4_small(self):
        rows = experiment_e4_cross_validation(
            scale=1, updates_per_workload=40, counters=("brute-force", "wedge", "hhh22")
        )
        assert rows and all(row.validated for row in rows)

    def test_e5_small(self):
        result = experiment_e5_update_scaling(
            sizes=(12, 24), updates_per_vertex=5, counters=("wedge", "hhh22")
        )
        assert len(result.points) == 4
        assert set(result.fitted_exponents) == {"wedge", "hhh22"}

    def test_e6_small(self):
        rows = experiment_e6_worst_case(num_vertices=20, num_updates=80)
        assert all(row.worst_to_mean_ratio >= 1.0 for row in rows)

    def test_e7_small(self):
        rows = experiment_e7_ivm_join(domain_sizes=(6,), updates_per_domain=100)
        assert rows[0].consistent

    def test_e9_small(self):
        rows = experiment_e9_phase_ablation(
            phase_lengths=(4, 64), num_vertices=16, num_updates=80
        )
        assert rows[0].phases_completed > rows[1].phases_completed


class TestReporting:
    def test_text_and_markdown_tables(self):
        rows = experiment_e1_theorem_constants()
        text = text_table(rows)
        markdown = markdown_table(rows)
        assert "regime" in text and "current" in text
        assert markdown.startswith("| regime")
        assert "| --- |" in markdown.replace("|---|", "| --- |") or "|---|" in markdown

    def test_tables_accept_mappings(self):
        rows = [{"a": 1, "b": True}, {"a": 2.5, "b": False}]
        rendered = text_table(rows, float_digits=1)
        assert "yes" in rendered and "no" in rendered
        assert rows_to_dicts(rows) == rows

    def test_tables_reject_unknown_types(self):
        with pytest.raises(TypeError):
            text_table([object()])

    def test_empty_tables(self):
        assert text_table([]) == "(no rows)"
        assert markdown_table([]) == "(no rows)"

    def test_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        assert "b" not in text_table(rows, columns=["a"])

    def test_banner(self):
        rendered = banner("E1")
        assert "E1" in rendered and "=" in rendered

    def test_build_experiments_markdown_quick(self):
        document = build_experiments_markdown(quick=True)
        assert document.startswith("# EXPERIMENTS")
        for section in ("## E1", "## E3", "## E5", "## E7", "## E9"):
            assert section in document
