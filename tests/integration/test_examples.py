"""Smoke tests that the example scripts run end to end.

The examples are user-facing documentation; they must keep working.  Each is
executed in-process (importing its module functions where possible would skip
the ``__main__`` plumbing, so we run the files with ``runpy``) with a guard on
runtime via reduced recursion into the heavy paths — the scripts themselves are
sized to finish in seconds.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLE_SCRIPTS = [
    "quickstart.py",
    "database_join_view.py",
    "social_network_motifs.py",
    "paper_constants.py",
]


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example script {script}"
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_examples_directory_has_quickstart():
    assert (EXAMPLES_DIR / "quickstart.py").exists()


def test_examples_import_only_public_api():
    """Examples should only use the public package surface (no underscore
    attribute access), keeping them honest as documentation."""
    for script in EXAMPLE_SCRIPTS:
        source = (EXAMPLES_DIR / script).read_text()
        assert "._" not in source, f"{script} reaches into private attributes"
