"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_constants_command(self, capsys):
        assert main(["constants"]) == 0
        output = capsys.readouterr().out
        assert "eps" in output
        assert "Appendix B constraints: satisfied" in output
        assert "0.65686" in output or "0.656856" in output

    def test_compare_command(self, capsys):
        assert main(["compare", "--vertices", "12", "--updates", "60", "--counters", "wedge,hhh22"]) == 0
        output = capsys.readouterr().out
        assert "wedge" in output and "hhh22" in output
        assert "final_count" in output

    def test_compare_all_counters_small(self, capsys):
        assert main(["compare", "--vertices", "10", "--updates", "40", "--workload", "hubs"]) == 0
        output = capsys.readouterr().out
        assert "assadi-shah" in output

    def test_omega_sweep_command(self, capsys):
        assert main(["omega-sweep", "--step", "0.25"]) == 0
        output = capsys.readouterr().out
        assert "omega" in output
        assert "yes" in output and "no" in output

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])
