"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestCli:
    def test_constants_command(self, capsys):
        assert main(["constants"]) == 0
        output = capsys.readouterr().out
        assert "eps" in output
        assert "Appendix B constraints: satisfied" in output
        assert "0.65686" in output or "0.656856" in output

    def test_counters_command_prints_capability_table(self, capsys):
        assert main(["counters"]) == 0
        output = capsys.readouterr().out
        for name in ("assadi-shah", "brute-force", "hhh22", "phase-fmm", "wedge"):
            assert name in output
        assert "batch_hook" in output and "oracle" in output
        assert "phase_length" in output  # options column lists counter knobs
        assert "O(n)" in output  # asymptotic class column

    def test_compare_rejects_bad_vertices(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--vertices", "-3"])

    def test_compare_command(self, capsys):
        assert main(["compare", "--vertices", "12", "--updates", "60", "--counters", "wedge,hhh22"]) == 0
        output = capsys.readouterr().out
        assert "wedge" in output and "hhh22" in output
        assert "final_count" in output

    def test_compare_all_counters_small(self, capsys):
        assert main(["compare", "--vertices", "10", "--updates", "40", "--workload", "hubs"]) == 0
        output = capsys.readouterr().out
        assert "assadi-shah" in output

    def test_omega_sweep_command(self, capsys):
        assert main(["omega-sweep", "--step", "0.25"]) == 0
        output = capsys.readouterr().out
        assert "omega" in output
        assert "yes" in output and "no" in output

    def test_parser_requires_command(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args([])

    def test_bench_command_writes_artifacts(self, capsys, tmp_path):
        assert (
            main(
                [
                    "bench",
                    "--quick",
                    "--experiments",
                    "e11",
                    "--output-dir",
                    str(tmp_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "E11" in output and "wrote" in output
        artifact = tmp_path / "BENCH_E11.json"
        assert artifact.exists()
        import json

        payload = json.loads(artifact.read_text())
        assert payload["benchmark"] == "E11"
        assert payload["params"]["batch_size"] == 64
        kernels = {row["kernel"] for row in payload["rows"]}
        assert "wedge-updates" in kernels and "multiply-chain-dense" in kernels
        assert all(row["exact"] for row in payload["rows"])

    def test_bench_command_rejects_unknown_experiment(self, capsys):
        assert main(["bench", "--experiments", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out
