"""Tests for the incremental products and the phase work scheduler."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError, CounterStateError
from repro.matmul.engine import CountMatrix, SparseBackend
from repro.matmul.scheduler import ChainProductJob, IncrementalMatrixProduct, PhaseScheduler


def random_matrix(rng: random.Random, rows: int, columns: int, density: float = 0.5) -> CountMatrix:
    matrix = CountMatrix()
    for i in range(rows):
        for j in range(columns):
            if rng.random() < density:
                matrix.add(f"r{i}", f"m{j}", 1)
    return matrix


class TestIncrementalMatrixProduct:
    def test_partial_then_complete(self):
        rng = random.Random(0)
        left = random_matrix(rng, 10, 8)
        right = CountMatrix()
        for j in range(8):
            for k in range(6):
                if rng.random() < 0.5:
                    right.add(f"m{j}", f"c{k}", 1)
        job = IncrementalMatrixProduct(left, right)
        assert not job.is_complete
        job.advance(5)
        assert job.remaining_rows() < 10 or job.operations_done > 0
        job.run_to_completion()
        assert job.is_complete
        expected, _ = SparseBackend().multiply(left, right)
        assert job.result == expected

    def test_advance_respects_budget_roughly(self):
        rng = random.Random(1)
        left = random_matrix(rng, 20, 10)
        right = random_matrix(rng, 10, 10)
        # Row labels of right must match columns of left.
        right = CountMatrix()
        for j in range(10):
            for k in range(10):
                if rng.random() < 0.5:
                    right.add(f"m{j}", f"c{k}", 1)
        job = IncrementalMatrixProduct(left, right)
        done = job.advance(3)
        # A single row is atomic, so the overshoot is bounded by one full row's
        # work (up to 10 middles, each with up to 10 right-hand entries).
        assert done <= 3 + 10 * 10

    def test_negative_budget_rejected(self):
        job = IncrementalMatrixProduct(CountMatrix(), CountMatrix())
        with pytest.raises(ConfigurationError):
            job.advance(-1)

    def test_empty_product(self):
        job = IncrementalMatrixProduct(CountMatrix(), CountMatrix())
        assert job.is_complete
        assert job.result.nnz == 0


class TestChainProductJob:
    def test_triple_chain_matches_direct_product(self):
        rng = random.Random(2)
        a = random_matrix(rng, 6, 5)
        b = CountMatrix()
        for j in range(5):
            for k in range(7):
                if rng.random() < 0.5:
                    b.add(f"m{j}", f"y{k}", 1)
        c = CountMatrix()
        for k in range(7):
            for l in range(4):
                if rng.random() < 0.5:
                    c.add(f"y{k}", f"v{l}", 1)
        job = ChainProductJob([a, b, c], name="abc")
        job.run_to_completion()
        backend = SparseBackend()
        expected, _ = backend.multiply(a, b)
        expected, _ = backend.multiply(expected, c)
        assert job.result == expected

    def test_result_before_completion_raises(self):
        a = CountMatrix({(1, 2): 1})
        b = CountMatrix({(2, 3): 1})
        job = ChainProductJob([a, b])
        with pytest.raises(CounterStateError):
            _ = job.result

    def test_single_matrix_chain(self):
        matrix = CountMatrix({(1, 2): 5})
        job = ChainProductJob([matrix])
        assert job.is_complete
        assert job.result == matrix

    def test_empty_chain_rejected(self):
        with pytest.raises(ConfigurationError):
            ChainProductJob([])

    def test_incremental_advance_eventually_completes(self):
        rng = random.Random(3)
        a = random_matrix(rng, 8, 8)
        b = CountMatrix()
        for j in range(8):
            for k in range(8):
                if rng.random() < 0.5:
                    b.add(f"m{j}", f"z{k}", 1)
        job = ChainProductJob([a, b])
        steps = 0
        while not job.is_complete and steps < 10_000:
            job.advance(2)
            steps += 1
        assert job.is_complete


class TestPhaseScheduler:
    def test_work_spreads_over_updates(self):
        rng = random.Random(4)
        a = random_matrix(rng, 10, 10)
        b = CountMatrix()
        for j in range(10):
            for k in range(10):
                if rng.random() < 0.5:
                    b.add(f"m{j}", f"w{k}", 1)
        scheduler = PhaseScheduler(budget_per_update=4)
        job = ChainProductJob([a, b])
        scheduler.submit(job)
        updates = 0
        while not scheduler.all_complete() and updates < 10_000:
            scheduler.work()
            updates += 1
        assert scheduler.all_complete()
        assert scheduler.updates_seen == updates
        assert scheduler.total_operations == job.operations_done

    def test_finish_all(self):
        scheduler = PhaseScheduler(budget_per_update=1)
        job = ChainProductJob([CountMatrix({(1, 2): 1}), CountMatrix({(2, 3): 1})])
        scheduler.submit(job)
        scheduler.finish_all()
        assert scheduler.all_complete()
        assert job.result.get(1, 3) == 1

    def test_clear(self):
        scheduler = PhaseScheduler()
        scheduler.submit(ChainProductJob([CountMatrix({(1, 2): 1}), CountMatrix()]))
        scheduler.clear()
        assert scheduler.all_complete()
        assert list(scheduler.jobs()) == []

    def test_negative_budget_rejected(self):
        scheduler = PhaseScheduler()
        with pytest.raises(ConfigurationError):
            scheduler.work(budget=-5)

    def test_pending_jobs(self):
        scheduler = PhaseScheduler(budget_per_update=0)
        job = ChainProductJob([CountMatrix({(1, 2): 1}), CountMatrix({(2, 3): 1})])
        scheduler.submit(job)
        assert scheduler.pending_jobs() == [job]
