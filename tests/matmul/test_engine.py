"""Tests for the multiplication backends and the engine facade."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.matmul.engine import (
    CountMatrix,
    DenseBackend,
    MatmulEngine,
    SparseBackend,
    multiply_dense_arrays,
)

import numpy as np


def random_count_matrix(rng: random.Random, rows: int, columns: int, density: float) -> CountMatrix:
    matrix = CountMatrix()
    for i in range(rows):
        for j in range(columns):
            if rng.random() < density:
                matrix.add(f"r{i}", f"c{j}", rng.randint(-2, 3) or 1)
    return matrix


def reference_product(left: CountMatrix, right: CountMatrix) -> CountMatrix:
    result = CountMatrix()
    for row, middle, left_value in left.items():
        for middle2, column, right_value in right.items():
            if middle == middle2:
                result.add(row, column, left_value * right_value)
    return result


class TestBackendsAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_sparse_equals_dense_equals_reference(self, seed):
        rng = random.Random(seed)
        left = random_count_matrix(rng, 6, 5, 0.4)
        # Right matrix rows must use the left matrix's column labels.
        right = CountMatrix()
        for j in range(5):
            for k in range(7):
                if rng.random() < 0.4:
                    right.add(f"c{j}", f"z{k}", rng.randint(-2, 2) or 1)
        sparse_result, sparse_stats = SparseBackend().multiply(left, right)
        dense_result, dense_stats = DenseBackend().multiply(left, right)
        expected = reference_product(left, right)
        assert sparse_result == expected
        assert dense_result == expected
        assert sparse_stats.backend == "sparse"
        assert dense_stats.backend == "dense"

    def test_empty_operands(self):
        empty = CountMatrix()
        result, stats = DenseBackend().multiply(empty, empty)
        assert result.nnz == 0
        assert stats.multiplications == 0
        result, _ = SparseBackend().multiply(empty, CountMatrix({(1, 2): 1}))
        assert result.nnz == 0


class TestEngine:
    def test_explicit_backend_choice(self):
        engine = MatmulEngine()
        left = CountMatrix({("a", "m"): 1})
        right = CountMatrix({("m", "b"): 1})
        assert engine.multiply(left, right, backend="sparse").get("a", "b") == 1
        assert engine.multiply(left, right, backend="dense").get("a", "b") == 1

    def test_invalid_backend(self):
        engine = MatmulEngine()
        with pytest.raises(ConfigurationError):
            engine.multiply(CountMatrix(), CountMatrix(), backend="quantum")

    def test_auto_backend_runs(self):
        engine = MatmulEngine()
        rng = random.Random(7)
        left = random_count_matrix(rng, 8, 8, 0.6)
        right = CountMatrix()
        for j in range(8):
            for k in range(8):
                if rng.random() < 0.6:
                    right.add(f"c{j}", f"x{k}", 1)
        assert engine.multiply(left, right) == reference_product(left, right)

    def test_cost_callback_invoked(self):
        calls = []
        engine = MatmulEngine(cost_callback=calls.append)
        engine.multiply(CountMatrix({(1, 2): 1}), CountMatrix({(2, 3): 1}))
        assert len(calls) == 1
        assert calls[0].multiplications >= 1

    def test_multiply_chain(self):
        engine = MatmulEngine()
        a = CountMatrix({("u", "x"): 1})
        b = CountMatrix({("x", "y"): 1})
        c = CountMatrix({("y", "v"): 1})
        assert engine.multiply_chain([a, b, c]).get("u", "v") == 1
        with pytest.raises(ConfigurationError):
            engine.multiply_chain([])


class TestDenseHelpers:
    def test_multiply_dense_arrays(self):
        left = np.array([[1, 2], [0, 1]])
        right = np.array([[1], [3]])
        assert multiply_dense_arrays(left, right).tolist() == [[7], [3]]

    def test_shape_validation(self):
        with pytest.raises(DimensionMismatchError):
            multiply_dense_arrays(np.ones((2, 3)), np.ones((2, 3)))
        with pytest.raises(DimensionMismatchError):
            multiply_dense_arrays(np.ones(3), np.ones((3, 1)))
