"""Fault-tolerant shard execution: retries, the degradation ladder, cleanup.

The contract: dispatch failures (killed workers, broken pools, timeouts,
transient task errors) never change the product — the executor retries on a
fresh pool, then degrades process -> thread -> serial, and only an error that
survives inline serial execution propagates.  ``close()`` is idempotent and
leaks no worker processes even after a pool broke mid-task.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import EVENT_EXECUTOR_DEGRADED, EngineConfig, FourCycleEngine
from repro.exceptions import ConfigurationError, InjectedTransientError
from repro.faults import (
    ACTION_KILL_WORKER,
    ACTION_STALL,
    ACTION_TRANSIENT_ERROR,
    SITE_EXECUTOR_TASK,
    Fault,
    FaultInjector,
)
from repro.matmul.engine import CsrMatrix, csr_spgemm
from repro.matmul.sharding import ShardExecutor


def operands(seed: int = 0, size: int = 32):
    rng = np.random.default_rng(seed)
    mask = rng.random((size, size)) < 0.3
    rows, cols = np.nonzero(mask)
    values = rng.integers(1, 5, size=len(rows), dtype=np.int64)
    left = CsrMatrix.from_coo(rows, cols, values, size, size)
    right = CsrMatrix.from_coo(cols, rows, values, size, size)
    return left, right


def assert_exact(actual, expected):
    product, work = actual
    reference, reference_work = expected
    assert work == reference_work
    np.testing.assert_array_equal(product.indptr, reference.indptr)
    np.testing.assert_array_equal(product.cols, reference.cols)
    np.testing.assert_array_equal(product.data, reference.data)


class TestRetries:
    def test_killed_worker_is_retried_without_raising(self):
        left, right = operands()
        injector = FaultInjector([Fault(SITE_EXECUTOR_TASK, ACTION_KILL_WORKER, at=0)])
        with ShardExecutor(
            workers=2, policy="process", min_shard_work=1, injector=injector
        ) as executor:
            assert_exact(executor.spgemm(left, right), csr_spgemm(left, right))
            assert injector.fired
            # One retry on a fresh pool sufficed; no degradation was needed.
            assert executor.degradations == []

    def test_transient_task_error_is_retried(self):
        left, right = operands(1)
        injector = FaultInjector([Fault(SITE_EXECUTOR_TASK, ACTION_TRANSIENT_ERROR, at=0)])
        with ShardExecutor(
            workers=2, policy="thread", min_shard_work=1, injector=injector
        ) as executor:
            assert_exact(executor.spgemm(left, right), csr_spgemm(left, right))
            assert executor.degradations == []

    def test_stalled_task_hits_the_timeout_then_retries(self):
        left, right = operands(2)
        injector = FaultInjector(
            [Fault(SITE_EXECUTOR_TASK, ACTION_STALL, at=0, payload={"seconds": 5.0})]
        )
        with ShardExecutor(
            workers=2,
            policy="thread",
            min_shard_work=1,
            task_timeout=0.05,
            backoff_base=0.001,
            injector=injector,
        ) as executor:
            assert_exact(executor.spgemm(left, right), csr_spgemm(left, right))

    def test_backoff_is_seeded(self):
        first = ShardExecutor(workers=2, retry_seed=7)
        second = ShardExecutor(workers=2, retry_seed=7)
        assert [first._retry_rng.random() for _ in range(4)] == [
            second._retry_rng.random() for _ in range(4)
        ]
        first.close()
        second.close()


class TestDegradationLadder:
    def test_persistent_failure_walks_the_full_ladder(self):
        left, right = operands(3)
        # More charges than any dispatch sequence can consume: every vehicle
        # keeps failing, so the ladder must walk process -> thread -> serial
        # and the error finally propagates from the serial floor.
        injector = FaultInjector(
            [Fault(SITE_EXECUTOR_TASK, ACTION_KILL_WORKER, at=0, times=1000)]
        )
        observed = []
        executor = ShardExecutor(
            workers=2,
            policy="process",
            min_shard_work=1,
            max_retries=0,
            injector=injector,
            on_degrade=lambda src, dst, reason: observed.append((src, dst)),
        )
        try:
            with pytest.raises(InjectedTransientError):
                executor.spgemm(left, right)
        finally:
            executor.close()
        assert observed == [("process", "thread"), ("thread", "serial")]
        assert [
            (entry["from"], entry["to"]) for entry in executor.degradations
        ] == observed

    def test_degraded_run_still_returns_the_exact_product(self):
        left, right = operands(4)
        # Enough charges to break the first process dispatch outright
        # (max_retries=0) but few enough that the thread vehicle drains them
        # and completes: one degradation, exact result.
        injector = FaultInjector(
            [Fault(SITE_EXECUTOR_TASK, ACTION_KILL_WORKER, at=0, times=1)]
        )
        with ShardExecutor(
            workers=2,
            policy="process",
            min_shard_work=1,
            max_retries=0,
            injector=injector,
        ) as executor:
            assert_exact(executor.spgemm(left, right), csr_spgemm(left, right))
            assert [(entry["from"], entry["to"]) for entry in executor.degradations] == [
                ("process", "thread")
            ]

    def test_engine_emits_executor_degraded_events(self):
        engine = FourCycleEngine(
            EngineConfig(counter="assadi-shah", workers=2, shard_policy="process")
        )
        executor = engine.counter.shard_executor
        assert executor is not None
        events = []
        engine.subscribe(events.append, kinds=[EVENT_EXECUTOR_DEGRADED])
        executor.on_degrade("process", "thread", "BrokenProcessPool: worker died")
        assert len(events) == 1
        assert events[0].kind == EVENT_EXECUTOR_DEGRADED
        assert events[0].payload["from_policy"] == "process"
        assert events[0].payload["to_policy"] == "thread"
        engine.close()


class TestCleanup:
    def test_close_is_idempotent_and_safe_after_breakage(self):
        left, right = operands(5)
        injector = FaultInjector([Fault(SITE_EXECUTOR_TASK, ACTION_KILL_WORKER, at=0)])
        executor = ShardExecutor(
            workers=2, policy="process", min_shard_work=1, injector=injector
        )
        executor.spgemm(left, right)  # breaks one pool, retries on a fresh one
        executor.close()
        executor.close()
        assert executor._process_pool is None
        assert executor._thread_pool is None

    def test_no_worker_processes_leak(self):
        left, right = operands(6)
        executor = ShardExecutor(workers=2, policy="process", min_shard_work=1)
        executor.spgemm(left, right)
        pool = executor._process_pool
        assert pool is not None
        workers = list(pool._processes.values())
        assert workers
        executor.close()
        for process in workers:
            process.join(timeout=10)
            assert not process.is_alive()

    def test_timed_out_pool_is_tracked_and_drained_by_close(self):
        left, right = operands(7)
        injector = FaultInjector(
            [Fault(SITE_EXECUTOR_TASK, ACTION_STALL, at=0, payload={"seconds": 0.3})]
        )
        executor = ShardExecutor(
            workers=2,
            policy="thread",
            min_shard_work=1,
            task_timeout=0.05,
            backoff_base=0.001,
            injector=injector,
        )
        executor.spgemm(left, right)  # first dispatch times out, pool abandoned
        assert executor._abandoned_pools
        abandoned = list(executor._abandoned_pools)
        executor.close()
        assert executor._abandoned_pools == []
        # The timeout could not cancel the stalled in-flight task, but once it
        # drains the abandoned pool's threads exit: nothing leaks past close().
        for pool in abandoned:
            for thread in pool._threads:
                thread.join(timeout=10)
                assert not thread.is_alive()

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="max_retries"):
            ShardExecutor(max_retries=-1)
        with pytest.raises(ConfigurationError, match="task_timeout"):
            ShardExecutor(task_timeout=0)
