"""Tests for class-restricted (rectangular) products."""

from __future__ import annotations

from repro.matmul.engine import CountMatrix, MatmulEngine
from repro.matmul.rectangular import (
    rectangular_multiply,
    restrict,
    restrict_by_predicate,
)


def sample_matrix() -> CountMatrix:
    return CountMatrix(
        {
            ("h1", "x"): 1,
            ("h1", "y"): 2,
            ("l1", "x"): 3,
            ("l2", "z"): 4,
        }
    )


class TestRestrict:
    def test_restrict_rows(self):
        restricted = restrict(sample_matrix(), rows={"h1"})
        assert restricted.row_labels() == {"h1"}
        assert restricted.get("h1", "y") == 2
        assert restricted.get("l1", "x") == 0

    def test_restrict_columns(self):
        restricted = restrict(sample_matrix(), columns={"x"})
        assert restricted.column_labels() == {"x"}
        assert restricted.nnz == 2

    def test_restrict_none_keeps_everything(self):
        assert restrict(sample_matrix()) == sample_matrix()

    def test_restrict_by_predicate(self):
        restricted = restrict_by_predicate(
            sample_matrix(), row_predicate=lambda label: str(label).startswith("h")
        )
        assert restricted.row_labels() == {"h1"}


class TestRectangularMultiply:
    def test_basic_product_and_dimensions(self):
        engine = MatmulEngine()
        left = CountMatrix({("u1", "m1"): 1, ("u2", "m2"): 1})
        right = CountMatrix({("m1", "v1"): 1, ("m2", "v2"): 1})
        report = rectangular_multiply(engine, left, right)
        assert report.product.get("u1", "v1") == 1
        assert report.product.get("u2", "v2") == 1
        assert report.left_rows == 2
        assert report.inner_dimension == 2
        assert report.right_columns == 2
        assert report.naive_cost == 8

    def test_row_restriction_mimics_class_submatrix(self):
        """The A^{H*} · B pattern: only high-class rows participate."""
        engine = MatmulEngine()
        a = CountMatrix({("high", "m"): 1, ("low", "m"): 1})
        b = CountMatrix({("m", "t"): 1})
        report = rectangular_multiply(engine, a, b, left_rows={"high"})
        assert report.product.get("high", "t") == 1
        assert report.product.get("low", "t") == 0
        assert report.left_rows == 1

    def test_inner_restriction(self):
        """The A^{*S} · B^{S*} pattern: only sparse middle vertices participate."""
        engine = MatmulEngine()
        a = CountMatrix({("u", "sparse"): 1, ("u", "dense"): 1})
        b = CountMatrix({("sparse", "v"): 1, ("dense", "v"): 1})
        report = rectangular_multiply(engine, a, b, inner={"sparse"})
        assert report.product.get("u", "v") == 1
        assert report.inner_dimension == 1

    def test_empty_restriction(self):
        engine = MatmulEngine()
        report = rectangular_multiply(engine, sample_matrix(), sample_matrix(), inner=set())
        assert report.product.nnz == 0
        assert report.naive_cost == 0
