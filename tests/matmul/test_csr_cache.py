"""Tests for the CountMatrix interned CSR cache and the cached dense backend."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.matmul.engine import (
    CountMatrix,
    DenseBackend,
    MatmulEngine,
    SparseBackend,
    exact_integer_matmul,
)

FAST_SETTINGS = settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])

entries_strategy = st.dictionaries(
    keys=st.tuples(st.integers(min_value=0, max_value=6), st.integers(min_value=0, max_value=6)),
    values=st.integers(min_value=-4, max_value=4).filter(lambda value: value != 0),
    max_size=25,
)


class TestMaintainedColumnLabels:
    def test_column_labels_track_adds_and_cancellations(self):
        matrix = CountMatrix()
        matrix.add("r1", "c1", 2)
        matrix.add("r2", "c1", 1)
        matrix.add("r1", "c2", 3)
        assert matrix.column_labels() == {"c1", "c2"}
        assert matrix.num_column_labels == 2
        matrix.add("r1", "c2", -3)  # cancels the only c2 entry
        assert matrix.column_labels() == {"c1"}
        matrix.add("r2", "c1", -1)
        assert matrix.column_labels() == {"c1"}  # r1 still holds c1
        matrix.add("r1", "c1", -2)
        assert matrix.column_labels() == set()
        assert matrix.num_column_labels == 0

    @given(entries=entries_strategy)
    @FAST_SETTINGS
    def test_maintained_labels_match_rescan(self, entries):
        matrix = CountMatrix(entries)
        rescanned = set()
        for _, column, _ in matrix.items():
            rescanned.add(column)
        assert matrix.column_labels() == rescanned
        assert matrix.num_row_labels == len(matrix.row_labels())

    def test_copy_and_from_dense_preserve_column_counts(self):
        matrix = CountMatrix({("a", "x"): 1, ("b", "x"): 2, ("a", "y"): 3})
        assert matrix.copy().column_labels() == {"x", "y"}
        dense = matrix.to_dense(["a", "b"], ["x", "y"])
        rebuilt = CountMatrix.from_dense(dense, ["a", "b"], ["x", "y"])
        assert rebuilt == matrix
        assert rebuilt.column_labels() == {"x", "y"}
        rebuilt.add("a", "y", -3)
        assert rebuilt.column_labels() == {"x"}


class TestCsrCache:
    def test_cache_reused_between_reads(self):
        matrix = CountMatrix({("a", "x"): 1, ("b", "y"): 2})
        assert matrix.csr() is matrix.csr()

    def test_cache_invalidated_on_mutation(self):
        matrix = CountMatrix({("a", "x"): 1})
        before = matrix.csr()
        matrix.add("a", "y", 5)
        after = matrix.csr()
        assert after is not before
        assert after.version == matrix.version
        assert list(after.data) == [1, 5]

    def test_csr_round_trips_contents(self):
        matrix = CountMatrix({("a", "x"): 1, ("a", "y"): -2, ("b", "x"): 7})
        csr = matrix.csr()
        assert csr.row_order == ["a", "b"]
        assert set(csr.col_order) == {"x", "y"}
        for position, row in enumerate(csr.row_order):
            for cursor in range(int(csr.indptr[position]), int(csr.indptr[position + 1])):
                column = csr.col_order[int(csr.col_ids[cursor])]
                assert matrix.get(row, column) == int(csr.data[cursor])

    def test_zero_cancellation_invalidates(self):
        matrix = CountMatrix({("a", "x"): 1})
        matrix.csr()
        matrix.add("a", "x", -1)
        assert matrix.csr().data.size == 0


class TestCachedDenseBackend:
    @given(left=entries_strategy, right=entries_strategy)
    @FAST_SETTINGS
    def test_cached_dense_equals_scalar_dense_and_sparse(self, left, right):
        left_matrix = CountMatrix(left)
        right_matrix = CountMatrix(right)
        cached, cached_stats = DenseBackend(use_csr_cache=True).multiply(left_matrix, right_matrix)
        scalar, scalar_stats = DenseBackend(use_csr_cache=False).multiply(left_matrix, right_matrix)
        sparse, _ = SparseBackend().multiply(left_matrix, right_matrix)
        assert cached == scalar
        assert cached == sparse
        assert cached_stats.multiplications == scalar_stats.multiplications

    def test_multiply_chain_reuses_operand_caches(self):
        matrices = [
            CountMatrix({(i, j): i + j + 1 for i in range(4) for j in range(4)})
            for _ in range(3)
        ]
        engine = MatmulEngine()
        first = engine.multiply_chain(matrices, backend="dense")
        versions = [matrix.csr().version for matrix in matrices]
        second = engine.multiply_chain(matrices, backend="dense")
        assert first == second
        # Operands were not mutated, so their cached CSR snapshots survived.
        assert [matrix.csr().version for matrix in matrices] == versions
        for matrix in matrices:
            assert matrix.csr() is matrix.csr()

    def test_mutation_between_multiplies_is_visible(self):
        left = CountMatrix({("a", "m"): 1})
        right = CountMatrix({("m", "z"): 1})
        backend = DenseBackend()
        product, _ = backend.multiply(left, right)
        assert product.get("a", "z") == 1
        left.add("a", "m", 2)  # invalidates the cached CSR
        product, _ = backend.multiply(left, right)
        assert product.get("a", "z") == 3


class TestExactIntegerMatmul:
    def test_matches_integer_product(self):
        rng = np.random.default_rng(0)
        left = rng.integers(-9, 9, size=(23, 17)).astype(np.int64)
        right = rng.integers(-9, 9, size=(17, 31)).astype(np.int64)
        assert np.array_equal(exact_integer_matmul(left, right), left @ right)

    def test_falls_back_above_float_exact_bound(self):
        huge = np.full((2, 2), 2**40, dtype=np.int64)
        product = exact_integer_matmul(huge, huge)
        assert np.array_equal(product, huge @ huge)

    def test_empty_operands(self):
        empty = np.zeros((0, 3), dtype=np.int64)
        other = np.zeros((3, 2), dtype=np.int64)
        assert exact_integer_matmul(empty, other).shape == (0, 2)


class TestVectorizedFromDense:
    @given(entries=entries_strategy)
    @FAST_SETTINGS
    def test_from_dense_round_trip(self, entries):
        matrix = CountMatrix(entries)
        rows = sorted(matrix.row_labels())
        columns = sorted(matrix.column_labels())
        dense = matrix.to_dense(rows, columns)
        rebuilt = CountMatrix.from_dense(dense, rows, columns)
        assert rebuilt == matrix
        assert rebuilt.nnz == matrix.nnz

    def test_from_dense_float_values_coerced(self):
        dense = np.array([[0.0, 2.0], [3.0, 0.0]])
        matrix = CountMatrix.from_dense(dense, ["a", "b"], ["x", "y"])
        assert matrix.get("a", "y") == 2
        assert isinstance(matrix.get("a", "y"), int)

    def test_from_dense_duplicate_labels_sum_like_add(self):
        dense = np.ones((2, 2), dtype=np.int64)
        matrix = CountMatrix.from_dense(dense, ["a", "a"], ["x", "y"])
        assert matrix.get("a", "x") == 2 and matrix.get("a", "y") == 2
        assert matrix.nnz == 2
        assert matrix.column_labels() == {"x", "y"}
        assert matrix.csr().data.size == 2  # bookkeeping consistent with rows
        by_columns = CountMatrix.from_dense(dense, ["a", "b"], ["x", "x"])
        assert by_columns.get("a", "x") == 2 and by_columns.nnz == 2
        product, _ = DenseBackend().multiply(matrix, CountMatrix({("x", "z"): 1}))
        assert product.get("a", "z") == 2
