"""Unit tests for the sparse CountMatrix representation."""

from __future__ import annotations

import numpy as np

from repro.matmul.engine import CountMatrix


class TestPointAccess:
    def test_default_zero(self):
        matrix = CountMatrix()
        assert matrix.get("a", "b") == 0
        assert matrix.nnz == 0
        assert not matrix

    def test_add_and_get(self):
        matrix = CountMatrix()
        matrix.add("a", "b", 2)
        matrix.add("a", "b", 3)
        assert matrix.get("a", "b") == 5
        assert matrix.nnz == 1

    def test_cancellation_removes_entry(self):
        matrix = CountMatrix()
        matrix.add(1, 2, 4)
        matrix.add(1, 2, -4)
        assert matrix.nnz == 0
        assert matrix.get(1, 2) == 0
        assert list(matrix.items()) == []

    def test_add_zero_is_noop(self):
        matrix = CountMatrix()
        matrix.add(1, 2, 0)
        assert matrix.nnz == 0

    def test_set(self):
        matrix = CountMatrix()
        matrix.set(1, 2, 7)
        matrix.set(1, 2, 3)
        assert matrix.get(1, 2) == 3
        matrix.set(1, 2, 0)
        assert matrix.nnz == 0

    def test_negative_values_allowed(self):
        matrix = CountMatrix()
        matrix.add("x", "y", -2)
        assert matrix.get("x", "y") == -2
        assert matrix.nnz == 1

    def test_constructor_from_entries(self):
        matrix = CountMatrix({(1, 2): 3, (2, 3): -1})
        assert matrix.get(1, 2) == 3
        assert matrix.get(2, 3) == -1


class TestBulkAccess:
    def test_rows_and_labels(self):
        matrix = CountMatrix({(1, "a"): 1, (1, "b"): 2, (2, "a"): 3})
        assert matrix.row_labels() == {1, 2}
        assert matrix.column_labels() == {"a", "b"}
        assert dict(matrix.row(1)) == {"a": 1, "b": 2}
        assert dict(matrix.row(99)) == {}

    def test_items_iteration(self):
        matrix = CountMatrix({(1, 2): 5})
        assert list(matrix.items()) == [(1, 2, 5)]

    def test_equality(self):
        assert CountMatrix({(1, 2): 3}) == CountMatrix({(1, 2): 3})
        assert CountMatrix({(1, 2): 3}) != CountMatrix({(1, 2): 4})


class TestLinearAlgebra:
    def test_copy_independent(self):
        matrix = CountMatrix({(1, 2): 3})
        clone = matrix.copy()
        clone.add(1, 2, 1)
        assert matrix.get(1, 2) == 3

    def test_add_matrix_with_scale(self):
        left = CountMatrix({(1, 2): 3})
        right = CountMatrix({(1, 2): 1, (2, 3): 2})
        left.add_matrix(right, scale=-1)
        assert left.get(1, 2) == 2
        assert left.get(2, 3) == -2

    def test_add_matrix_cancels(self):
        """The warm-up algorithm's negative-edge trick: a chunk containing the
        deletion of an edge inserted in an earlier chunk cancels exactly."""
        earlier = CountMatrix({("x", "y"): 1})
        later = CountMatrix({("x", "y"): -1})
        earlier.add_matrix(later)
        assert earlier.nnz == 0

    def test_transpose(self):
        matrix = CountMatrix({(1, 2): 3})
        assert matrix.transpose().get(2, 1) == 3

    def test_dense_round_trip(self):
        matrix = CountMatrix({("r1", "c1"): 2, ("r2", "c2"): -1})
        rows = ["r1", "r2"]
        columns = ["c1", "c2"]
        dense = matrix.to_dense(rows, columns)
        assert dense.shape == (2, 2)
        assert dense[0, 0] == 2 and dense[1, 1] == -1
        back = CountMatrix.from_dense(dense, rows, columns)
        assert back == matrix

    def test_to_dense_ignores_unknown_labels(self):
        matrix = CountMatrix({("r1", "c1"): 2, ("other", "c1"): 5})
        dense = matrix.to_dense(["r1"], ["c1"])
        assert dense.tolist() == [[2]]

    def test_from_pairs(self):
        matrix = CountMatrix.from_pairs([(1, 2), (3, 4)])
        assert matrix.get(1, 2) == 1 and matrix.get(3, 4) == 1

    def test_from_dense_numpy_ints(self):
        dense = np.array([[0, 1], [2, 0]])
        matrix = CountMatrix.from_dense(dense, ["a", "b"], ["x", "y"])
        assert matrix.get("a", "y") == 1
        assert matrix.get("b", "x") == 2
        assert matrix.nnz == 2
