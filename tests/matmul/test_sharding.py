"""The shard-parallel SpGEMM layer: plans, views, merges, and executors.

The contract under test is bit-identity: for any operands, any shard count,
and any execution policy, :meth:`ShardExecutor.spgemm` returns exactly the
CSR arrays (and work count) of the serial :func:`csr_spgemm` kernel.  The
plan/extract/merge pieces are also pinned individually on the edge cases the
row partitioning can hit — empty shards, single-row shards, and a heavy row
whose expansion dwarfs the even share.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.matmul.engine import CsrMatrix, csr_spgemm
from repro.matmul.sharding import (
    ShardExecutor,
    ShardPlan,
    available_cores,
    extract_shard_view,
    merge_shard_results,
    run_shard_task,
)

FAST_SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def coo(rows, cols, data, num_rows, num_cols) -> CsrMatrix:
    return CsrMatrix.from_coo(
        np.asarray(rows, dtype=np.int64),
        np.asarray(cols, dtype=np.int64),
        np.asarray(data, dtype=np.int64),
        num_rows,
        num_cols,
    )


def random_csr(seed: int, rows: int = 12, cols: int = 12, density: float = 0.25) -> CsrMatrix:
    rng = np.random.default_rng(seed)
    mask = rng.random((rows, cols)) < density
    r, c = np.nonzero(mask)
    values = rng.integers(-5, 6, size=len(r), dtype=np.int64)
    return CsrMatrix.from_coo(r, c, values, rows, cols)


def assert_identical(actual, expected):
    product, work = actual
    reference, reference_work = expected
    assert work == reference_work
    np.testing.assert_array_equal(product.indptr, reference.indptr)
    np.testing.assert_array_equal(product.cols, reference.cols)
    np.testing.assert_array_equal(product.data, reference.data)


class TestShardPlan:
    def test_empty_matrix_has_no_shards(self):
        empty = CsrMatrix.from_coo([], [], [], 0, 0)
        plan = ShardPlan.balanced(empty, empty, 4)
        assert plan.num_shards == 0
        assert list(plan.ranges()) == []

    def test_all_zero_rows_collapse_to_one_shard(self):
        matrix = CsrMatrix.from_coo([], [], [], 6, 6)
        plan = ShardPlan.balanced(matrix, matrix, 4)
        assert plan.num_shards == 1
        assert list(plan.ranges()) == [(0, 6)]

    def test_single_row_matrix(self):
        matrix = coo([0, 0], [0, 1], [1, 1], 1, 2)
        square = coo([0, 1], [1, 0], [1, 1], 2, 2)
        plan = ShardPlan.balanced(matrix, square, 4)
        assert plan.num_shards == 1
        assert list(plan.ranges()) == [(0, 1)]

    def test_rows_are_never_split(self):
        left = random_csr(1, rows=20, cols=10)
        right = random_csr(2, rows=10, cols=10)
        plan = ShardPlan.balanced(left, right, 6)
        bounds = plan.bounds
        assert bounds[0] == 0 and bounds[-1] == left.num_rows
        assert np.all(np.diff(bounds) >= 1)

    def test_heavy_row_gets_isolated_and_neighbours_rebalance(self):
        # Row 5 references the one dense right row; its expansion is ~25x any
        # other row's, so the work quantiles all land around it.
        rows = list(range(10)) + [5] * 4
        cols = [0] * 10 + [1, 2, 3, 4]
        left = coo(rows, cols, np.ones(14, dtype=np.int64), 10, 10)
        heavy = coo(
            [1] * 50 + [0, 2, 3, 4],
            list(range(10)) * 5 + [0, 0, 0, 0],
            np.ones(54, dtype=np.int64),
            10,
            10,
        )
        plan = ShardPlan.balanced(left, heavy, 4)
        ranges = list(plan.ranges())
        assert any(lo <= 5 < hi for lo, hi in ranges)
        assert_identical(
            ShardExecutor(workers=2, min_shard_work=1).spgemm(left, heavy),
            csr_spgemm(left, heavy),
        )

    def test_invalid_shard_count_rejected(self):
        matrix = random_csr(3)
        with pytest.raises(ConfigurationError):
            ShardPlan.balanced(matrix, matrix, 0)


class TestExtractAndMerge:
    def test_empty_shard_round_trips(self):
        # Rows 2:5 of the left operand hold no entries; the shard must still
        # produce its (all-empty) rows so the merge covers every global row.
        left = coo([0, 1, 5], [0, 1, 2], [1, 2, 3], 6, 6)
        right = random_csr(4, rows=6, cols=6, density=0.5)
        view = extract_shard_view(left, right, 2, 5)
        result = run_shard_task(view)
        assert result.num_rows == 3
        assert result.row_lengths.sum() == 0

    def test_single_row_shard_matches_serial_row(self):
        left = random_csr(5, rows=8, cols=8)
        right = random_csr(6, rows=8, cols=8)
        reference, _ = csr_spgemm(left, right)
        for row in range(8):
            view = extract_shard_view(left, right, row, row + 1)
            result = run_shard_task(view)
            begin, end = reference.indptr[row], reference.indptr[row + 1]
            np.testing.assert_array_equal(result.cols, reference.cols[begin:end])
            np.testing.assert_array_equal(result.data, reference.data[begin:end])

    def test_manual_plan_extract_merge_equals_serial(self):
        left = random_csr(7, rows=16, cols=12, density=0.3)
        right = random_csr(8, rows=12, cols=14, density=0.3)
        plan = ShardPlan.balanced(left, right, 5)
        results = [
            run_shard_task(extract_shard_view(left, right, lo, hi))
            for lo, hi in plan.ranges()
        ]
        assert_identical(
            merge_shard_results(results, left.num_rows, right.num_cols),
            csr_spgemm(left, right),
        )

    def test_column_compression_is_tight(self):
        # The view's right operand holds exactly the referenced rows, and its
        # column footprint only the columns those rows populate.
        left = coo([0, 0], [1, 3], [1, 1], 2, 5)
        right = coo([0, 1, 2, 3, 4], [0, 4, 1, 2, 3], [9, 9, 9, 9, 9], 5, 5)
        view = extract_shard_view(left, right, 0, 1)
        assert len(view.right_indptr) - 1 == 2          # rows 1 and 3 only
        np.testing.assert_array_equal(view.local_cols, [2, 4])


class TestShardExecutor:
    def test_workers_one_is_a_pass_through(self):
        left, right = random_csr(9), random_csr(10)
        with ShardExecutor(workers=1) as executor:
            assert_identical(executor.spgemm(left, right), csr_spgemm(left, right))

    def test_empty_operands_short_circuit(self):
        empty = CsrMatrix.from_coo([], [], [], 4, 4)
        with ShardExecutor(workers=4, min_shard_work=1) as executor:
            product, work = executor.spgemm(empty, random_csr(11, rows=4, cols=4))
            assert work == 0 and product.nnz == 0

    @pytest.mark.parametrize("policy", ["serial", "thread", "process"])
    def test_forced_policies_are_bit_identical(self, policy):
        left = random_csr(12, rows=24, cols=24, density=0.3)
        right = random_csr(13, rows=24, cols=24, density=0.3)
        with ShardExecutor(workers=2, policy=policy, min_shard_work=1) as executor:
            assert_identical(executor.spgemm(left, right), csr_spgemm(left, right))

    def test_auto_policy_on_one_worker_is_serial(self):
        executor = ShardExecutor(workers=1)
        assert executor.resolve_policy(total_work=1 << 30, num_shards=8) == "serial"

    def test_auto_policy_splits_on_per_shard_cost(self):
        executor = ShardExecutor(workers=4)
        if executor.effective_parallelism() == 1:
            assert executor.resolve_policy(1 << 30, 8) == "serial"
        else:
            assert executor.resolve_policy(1 << 10, 8) == "thread"
            assert executor.resolve_policy(1 << 40, 8) == "process"

    def test_target_shards_collapses_small_products(self):
        executor = ShardExecutor(workers=4)
        assert executor.target_shards(total_work=100, num_rows=1000) == 1
        assert executor.target_shards(total_work=1 << 30, num_rows=3) == 3
        assert (
            executor.target_shards(total_work=1 << 30, num_rows=1000)
            == 4 * executor.overshard
        )

    def test_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            ShardExecutor(workers=0)
        with pytest.raises(ConfigurationError):
            ShardExecutor(workers=2, policy="gpu")
        with pytest.raises(ConfigurationError):
            ShardExecutor(workers=2, overshard=0)

    def test_available_cores_is_positive(self):
        assert available_cores() >= 1

    def test_block_entries_forwarded(self):
        # A one-entry expansion budget forces single-entry kernel blocks; the
        # result must not change.
        left = random_csr(14, rows=10, cols=10)
        right = random_csr(15, rows=10, cols=10)
        with ShardExecutor(workers=2, min_shard_work=1, block_entries=1) as executor:
            assert_identical(executor.spgemm(left, right), csr_spgemm(left, right))


@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    workers=st.sampled_from([2, 3, 4]),
    overshard=st.integers(min_value=1, max_value=6),
)
@FAST_SETTINGS
def test_sharded_product_is_bit_identical_on_random_matrices(seed, workers, overshard):
    rng = np.random.default_rng(seed)
    rows, mids, cols = rng.integers(1, 24, size=3)
    left = random_csr(seed, rows=int(rows), cols=int(mids), density=0.3)
    right = random_csr(seed + 1, rows=int(mids), cols=int(cols), density=0.3)
    with ShardExecutor(
        workers=workers, policy="serial", overshard=overshard, min_shard_work=1
    ) as executor:
        assert_identical(executor.spgemm(left, right), csr_spgemm(left, right))


def test_env_override_sets_default_block_entries(monkeypatch):
    from repro.matmul import engine

    monkeypatch.setenv("REPRO_SPGEMM_BLOCK_ENTRIES", "7")
    assert engine._block_entries_from_env() == 7
    monkeypatch.delenv("REPRO_SPGEMM_BLOCK_ENTRIES")
    assert engine._block_entries_from_env() == 1 << 22
    # An unset-looking (blank) value behaves like unset rather than erroring.
    monkeypatch.setenv("REPRO_SPGEMM_BLOCK_ENTRIES", "   ")
    assert engine._block_entries_from_env() == 1 << 22


def test_invalid_block_entries_env_raises_configuration_error(monkeypatch):
    from repro.exceptions import ConfigurationError
    from repro.matmul import engine

    monkeypatch.setenv("REPRO_SPGEMM_BLOCK_ENTRIES", "not-a-number")
    with pytest.raises(ConfigurationError, match="REPRO_SPGEMM_BLOCK_ENTRIES"):
        engine._block_entries_from_env()
    monkeypatch.setenv("REPRO_SPGEMM_BLOCK_ENTRIES", "-3")
    with pytest.raises(ConfigurationError, match="REPRO_SPGEMM_BLOCK_ENTRIES"):
        engine._block_entries_from_env()
    monkeypatch.setenv("REPRO_SPGEMM_BLOCK_ENTRIES", "0")
    with pytest.raises(ConfigurationError, match="positive"):
        engine._block_entries_from_env()
