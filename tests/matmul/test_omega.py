"""Tests for the omega / rectangular-exponent cost models."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.matmul.omega import (
    OMEGA_BEST,
    OMEGA_CURRENT,
    OMEGA_IMPROVEMENT_THRESHOLD,
    OMEGA_NAIVE,
    OMEGA_STRASSEN,
    BestPossibleRectangularModel,
    BlockPartitionRectangularModel,
    OmegaModel,
    PublishedValuesRectangularModel,
    best_omega_model,
    current_omega_model,
    model_for_omega,
    naive_omega_model,
)


class TestConstants:
    def test_current_value_matches_paper(self):
        assert OMEGA_CURRENT == pytest.approx(2.371339)

    def test_ordering(self):
        assert OMEGA_BEST < OMEGA_CURRENT < OMEGA_STRASSEN < OMEGA_NAIVE

    def test_improvement_threshold(self):
        assert OMEGA_IMPROVEMENT_THRESHOLD == 2.5


class TestRectangularModels:
    def test_block_bound_square_case(self):
        model = BlockPartitionRectangularModel(omega=2.371339)
        assert model.exponent(1, 1, 1) == pytest.approx(2.371339)

    def test_block_bound_never_below_io(self):
        model = BlockPartitionRectangularModel(omega=2.0)
        assert model.exponent(1, 0.1, 1) >= 1.1

    def test_best_possible(self):
        model = BestPossibleRectangularModel()
        assert model.exponent(1, 1, 1) == 2
        assert model.exponent(0.5, 1, 0.25) == pytest.approx(1.5)

    def test_published_anchor_values(self):
        model = PublishedValuesRectangularModel()
        eps, eps1, eps2 = 0.0098109, 0.04201965, 0.14568075
        value = model.exponent(1 / 3 + eps1, 2 / 3 - eps1, 1 / 3 + eps1)
        assert value == pytest.approx(1.10495201)
        inner = 1 / 3 - eps1 + eps2
        value = model.exponent(2 / 3 + 2 * eps, inner, inner)
        assert value == pytest.approx(1.24039952)

    def test_published_model_falls_back_elsewhere(self):
        model = PublishedValuesRectangularModel()
        fallback = BlockPartitionRectangularModel(model.omega)
        assert model.exponent(1, 1, 1) == pytest.approx(fallback.exponent(1, 1, 1))

    def test_negative_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            BlockPartitionRectangularModel().exponent(-1, 1, 1)


class TestOmegaModel:
    def test_square_cost_exponent(self):
        model = current_omega_model()
        assert model.square_cost_exponent(2 / 3) == pytest.approx(2 / 3 * 2.371339)
        with pytest.raises(ConfigurationError):
            model.square_cost_exponent(-1)

    def test_improvement_predicate(self):
        assert current_omega_model().allows_improvement()
        assert best_omega_model().allows_improvement()
        assert not naive_omega_model().allows_improvement()
        assert not model_for_omega(2.6).allows_improvement()
        # Strassen is not enough (the paper highlights this).
        assert not model_for_omega(OMEGA_STRASSEN).allows_improvement()

    def test_predicted_square_cost(self):
        model = best_omega_model()
        assert model.predicted_square_cost(10) == pytest.approx(100.0)
        assert model.predicted_square_cost(0) == 0.0

    def test_omega_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            OmegaModel(omega=1.5, rectangular=BestPossibleRectangularModel())
        with pytest.raises(ConfigurationError):
            model_for_omega(3.5)

    def test_named_models(self):
        assert current_omega_model().name == "current"
        assert best_omega_model().name == "best"
        assert naive_omega_model().name == "naive"
