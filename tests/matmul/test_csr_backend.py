"""Tests for the CSR SpGEMM kernel, its backend, and the dispatcher.

The load-bearing property: ``CsrBackend``, ``SparseBackend`` and
``DenseBackend`` compute the *same product* on any pair of integer matrices —
the CSR path is a pure acceleration, never an approximation.  Hypothesis
drives the equivalence over random matrices including empty operands,
single-row shapes, negative/cancelling values, and high-collision middles
(many entries sharing one middle label); unit tests pin the kernel mechanics
(row blocking, merge-strategy selection, COO coalescing) and the
density-aware dispatcher.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DimensionMismatchError
from repro.matmul.engine import (
    CountMatrix,
    CsrBackend,
    CsrMatrix,
    DenseBackend,
    MatmulEngine,
    SparseBackend,
    csr_linear_combination,
    csr_spgemm,
    spgemm_work,
)
from repro.matmul.scheduler import ProductDispatcher

PROPERTY_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def entries_strategy(row_prefix: str, column_prefix: str, max_dim: int = 7):
    """Random (row, column) -> value maps over small label universes."""
    coordinate = st.tuples(
        st.integers(0, max_dim - 1), st.integers(0, max_dim - 1)
    )
    return st.dictionaries(
        coordinate, st.integers(-4, 4).filter(bool), max_size=30
    ).map(
        lambda entries: CountMatrix(
            {
                (f"{row_prefix}{i}", f"{column_prefix}{j}"): value
                for (i, j), value in entries.items()
            }
        )
    )


@PROPERTY_SETTINGS
@given(left=entries_strategy("r", "m"), right=entries_strategy("m", "c"))
def test_backends_agree_on_random_matrices(left, right):
    sparse_result, sparse_stats = SparseBackend().multiply(left, right)
    csr_result, csr_stats = CsrBackend().multiply(left, right)
    dense_result, _ = DenseBackend().multiply(left, right)
    assert csr_result == sparse_result
    assert dense_result == sparse_result
    # The expansion work is backend-independent.
    assert csr_stats.multiplications == sparse_stats.multiplications
    assert csr_stats.output_nnz == sparse_result.nnz


@PROPERTY_SETTINGS
@given(
    left=entries_strategy("r", "m"),
    right=entries_strategy("m", "c"),
    block_entries=st.sampled_from([1, 3, 17, 1 << 22]),
)
def test_row_blocking_never_changes_the_product(left, right, block_entries):
    expected, _ = SparseBackend().multiply(left, right)
    blocked, _ = CsrBackend(block_entries=block_entries).multiply(left, right)
    assert blocked == expected


@PROPERTY_SETTINGS
@given(entries=entries_strategy("m", "c", max_dim=5))
def test_high_collision_middles(entries):
    """Every left entry funnels through one middle label: maximal collisions."""
    left = CountMatrix({(f"r{i}", "m0"): i + 1 for i in range(6)})
    right = CountMatrix()
    for _, column, value in entries.items():
        right.add("m0", column, value)
    expected, _ = SparseBackend().multiply(left, right)
    result, _ = CsrBackend().multiply(left, right)
    assert result == expected


class TestCsrBackendEdgeCases:
    def test_empty_operands(self):
        empty = CountMatrix()
        result, stats = CsrBackend().multiply(empty, empty)
        assert result.nnz == 0 and stats.multiplications == 0
        result, _ = CsrBackend().multiply(empty, CountMatrix({(1, 2): 1}))
        assert result.nnz == 0
        result, _ = CsrBackend().multiply(CountMatrix({(1, 2): 1}), empty)
        assert result.nnz == 0

    def test_single_row_and_column(self):
        left = CountMatrix({("r", "m"): 3})
        right = CountMatrix({("m", "c"): -2})
        result, stats = CsrBackend().multiply(left, right)
        assert result.get("r", "c") == -6
        assert stats.multiplications == 1
        assert stats.backend == "csr"

    def test_disjoint_middles_produce_nothing(self):
        left = CountMatrix({("r", "m1"): 1})
        right = CountMatrix({("m2", "c"): 1})
        result, _ = CsrBackend().multiply(left, right)
        assert result.nnz == 0

    def test_cancellation_drops_entries(self):
        left = CountMatrix({("r", "a"): 1, ("r", "b"): 1})
        right = CountMatrix({("a", "c"): 5, ("b", "c"): -5})
        result, _ = CsrBackend().multiply(left, right)
        assert result.nnz == 0

    def test_large_values_stay_exact(self):
        # Above the float64-exact window (2^53) but inside int64 — the
        # bincount merge must step aside for the exact sort-reduce path.
        big = 1 << 29
        left = CountMatrix({("r", f"m{k}"): big for k in range(8)})
        right = CountMatrix({(f"m{k}", "c"): big for k in range(8)})
        result, _ = CsrBackend().multiply(left, right)
        assert result.get("r", "c") == 8 * big * big  # 2^61, not float64-exact

    def test_engine_accepts_csr_backend(self):
        engine = MatmulEngine()
        left = CountMatrix({("a", "m"): 2})
        right = CountMatrix({("m", "b"): 3})
        assert engine.multiply(left, right, backend="csr").get("a", "b") == 6
        with pytest.raises(ConfigurationError):
            engine.multiply(left, right, backend="quantum")


class TestCsrMatrix:
    def _random_pair(self, seed):
        rng = np.random.default_rng(seed)
        dense = rng.integers(-3, 4, size=(11, 9))
        dense[rng.random((11, 9)) < 0.5] = 0
        rows, cols = np.nonzero(dense)
        return dense, CsrMatrix.from_coo(rows, cols, dense[rows, cols], 11, 9)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_coo_round_trip_and_helpers(self, seed):
        dense, matrix = self._random_pair(seed)
        assert (matrix.to_dense() == dense).all()
        assert (matrix.transpose().to_dense() == dense.T).all()
        assert (matrix.row_sums() == dense.sum(axis=1)).all()
        column_mask = np.arange(9) % 2 == 0
        assert (matrix.filter_columns(column_mask).to_dense() == dense * column_mask).all()
        row_mask = np.arange(11) < 5
        assert (matrix.filter_rows(row_mask).to_dense() == dense * row_mask[:, None]).all()
        scale = np.arange(11, dtype=np.int64) % 3
        assert (matrix.scale_rows(scale).to_dense() == dense * scale[:, None]).all()

    def test_from_coo_coalesces_and_cancels(self):
        rows = np.array([0, 0, 1, 1])
        cols = np.array([2, 2, 0, 0])
        data = np.array([3, 4, 5, -5])
        matrix = CsrMatrix.from_coo(rows, cols, data, 2, 3)
        assert matrix.nnz == 1
        assert matrix.to_dense()[0, 2] == 7

    def test_without_diagonal(self):
        dense = np.array([[1, 2], [3, 4]])
        rows, cols = np.nonzero(dense)
        matrix = CsrMatrix.from_coo(rows, cols, dense[rows, cols], 2, 2)
        trimmed = matrix.without_diagonal().to_dense()
        assert trimmed.tolist() == [[0, 2], [3, 0]]

    def test_linear_combination(self):
        dense_a, a = self._random_pair(3)
        dense_b, b = self._random_pair(4)
        combined = csr_linear_combination([(2, a), (-1, b)], 11, 9)
        assert (combined.to_dense() == 2 * dense_a - dense_b).all()
        with pytest.raises(DimensionMismatchError):
            csr_linear_combination([(1, a)], 5, 5)

    def test_spgemm_matches_dense_and_reports_work(self):
        dense_a, a = self._random_pair(5)
        dense_b = np.arange(9 * 6).reshape(9, 6) % 4 - 1
        rows, cols = np.nonzero(dense_b)
        b = CsrMatrix.from_coo(rows, cols, dense_b[rows, cols], 9, 6)
        for block in (1, 4, 1 << 22):
            product, work = csr_spgemm(a, b, block_entries=block)
            assert (product.to_dense() == dense_a @ dense_b).all()
            assert work == spgemm_work(a, b)
        with pytest.raises(DimensionMismatchError):
            csr_spgemm(a, a)


class TestDispatcher:
    def test_explicit_backends_are_pinned(self):
        assert ProductDispatcher(backend="dense").decide(10, 10, 10, 10 ** 9).backend == "dense"
        assert ProductDispatcher(backend="csr").decide(10, 10, 10, 0).backend == "csr"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ProductDispatcher(backend="quantum")

    def test_auto_prefers_csr_on_sparse_and_dense_on_dense(self):
        dispatcher = ProductDispatcher()
        n = 4096
        sparse_work = 10 * n  # a few entries per row
        assert dispatcher.decide_square(n, sparse_work).backend == "csr"
        dense_work = n * n * 64  # dense-ish operands
        assert dispatcher.decide_square(256, 256 * 256 * 64).backend == "dense"
        assert dispatcher.decide_square(n, dense_work).costs["dense"] > 0

    def test_memory_cap_forces_csr(self):
        dispatcher = ProductDispatcher(dense_cells_limit=1 << 10)
        # Tiny work but a huge dense footprint: the cap must win.
        assert dispatcher.decide_square(10 ** 6, 100).backend == "csr"


class TestDenseBackendAlignment:
    def test_aligned_middle_orders_skip_remap(self):
        """Chained products share the middle label order; the cached dense
        backend must produce the same product through its aligned fast path."""
        left = CountMatrix()
        right = CountMatrix()
        for k in range(6):
            left.add("r", f"m{k}", k + 1)
            right.add(f"m{k}", "c", 2 * k + 1)
        assert left.csr().col_order == right.csr().row_order
        result, _ = DenseBackend().multiply(left, right)
        expected, _ = SparseBackend().multiply(left, right)
        assert result == expected

    def test_misaligned_orders_still_agree(self):
        left = CountMatrix({("r", "m1"): 2, ("r", "m0"): 3})
        right = CountMatrix({("m0", "c"): 5, ("m1", "c"): 7, ("mX", "c"): 11})
        result, _ = DenseBackend().multiply(left, right)
        expected, _ = SparseBackend().multiply(left, right)
        assert result == expected


class TestAddRow:
    def test_add_row_matches_pointwise_adds(self):
        bulk = CountMatrix({("a", "x"): 1})
        pointwise = bulk.copy()
        columns = ["x", "y", "z", "y"]
        deltas = [-1, 2, 3, 4]
        bulk.add_row("a", columns, deltas)
        for column, delta in zip(columns, deltas):
            pointwise.add("a", column, delta)
        assert bulk == pointwise
        assert bulk.nnz == pointwise.nnz
        assert bulk.column_labels() == pointwise.column_labels()

    def test_add_row_scalar_delta_and_row_cleanup(self):
        matrix = CountMatrix()
        matrix.add_row("a", ["x", "y"], 2)
        assert matrix.get("a", "x") == 2 and matrix.get("a", "y") == 2
        matrix.add_row("a", ["x", "y"], -2)
        assert matrix.nnz == 0
        assert not matrix.row_labels()

    def test_add_row_noops(self):
        matrix = CountMatrix({("a", "x"): 1})
        version = matrix.version
        matrix.add_row("a", [], [1])
        matrix.add_row("a", ["x"], 0)
        assert matrix.version == version
        assert matrix.get("a", "x") == 1
