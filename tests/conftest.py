"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.api import available_counter_names, counter_spec
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeUpdate, UpdateStream


def square_edges() -> list[tuple[str, str]]:
    """A single 4-cycle a-b-c-d-a."""
    return [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")]


def k4_edges() -> list[tuple[int, int]]:
    """The complete graph on 4 vertices (contains exactly three 4-cycles)."""
    return [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]


def complete_bipartite_edges(left: int, right: int) -> list[tuple[str, str]]:
    """K_{left,right}; it has C(left,2) * C(right,2) 4-cycles."""
    return [(f"l{i}", f"r{j}") for i in range(left) for j in range(right)]


def expected_bipartite_cycles(left: int, right: int) -> int:
    return (left * (left - 1) // 2) * (right * (right - 1) // 2)


def random_dynamic_stream(
    num_vertices: int, num_updates: int, seed: int, delete_fraction: float = 0.3
) -> UpdateStream:
    """A consistent random insert/delete stream (self-contained, no generator
    dependency so graph/counter tests do not depend on the workloads module)."""
    rng = random.Random(seed)
    live: list[tuple[int, int]] = []
    live_set: set[tuple[int, int]] = set()
    updates: list[EdgeUpdate] = []
    while len(updates) < num_updates:
        if live and rng.random() < delete_fraction:
            index = rng.randrange(len(live))
            edge = live[index]
            live[index] = live[-1]
            live.pop()
            live_set.discard(edge)
            updates.append(EdgeUpdate.delete(*edge))
            continue
        u, v = rng.randrange(num_vertices), rng.randrange(num_vertices)
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in live_set:
            continue
        live.append(key)
        live_set.add(key)
        updates.append(EdgeUpdate.insert(*key))
    return UpdateStream(updates)


@pytest.fixture
def square_graph() -> DynamicGraph:
    return DynamicGraph(edges=square_edges())


@pytest.fixture
def k4_graph() -> DynamicGraph:
    return DynamicGraph(edges=k4_edges())


@pytest.fixture(params=sorted(available_counter_names()))
def any_counter(request):
    """Parametrized fixture yielding a fresh instance of every registered counter."""
    return counter_spec(request.param).create()


@pytest.fixture
def small_stream() -> UpdateStream:
    return random_dynamic_stream(num_vertices=12, num_updates=120, seed=7)
