"""Tests for the capability-aware counter registry."""

from __future__ import annotations

import pytest

from repro.api import CounterSpec, OptionSpec, available_specs, counter_spec, register_spec
from repro.core.base import DynamicFourCycleCounter
from repro.core.wedge_counter import WedgeCounter
from repro.exceptions import ConfigurationError

BUILTINS = ("assadi-shah", "brute-force", "hhh22", "phase-fmm", "wedge")


class TestSpecs:
    def test_builtin_specs_present_and_sorted(self):
        names = [spec.name for spec in available_specs()]
        assert set(BUILTINS).issubset(set(names))
        assert names == sorted(names)

    def test_every_builtin_supports_batch_hook(self):
        for name in BUILTINS:
            assert counter_spec(name).supports_batch_hook

    def test_oracle_capability(self):
        assert counter_spec("assadi-shah").needs_oracle
        assert counter_spec("phase-fmm").needs_oracle
        assert not counter_spec("wedge").needs_oracle
        assert not counter_spec("brute-force").needs_oracle

    def test_common_options_listed_everywhere(self):
        for name in BUILTINS:
            names = counter_spec(name).option_names()
            assert "interned" in names and "record_metrics" in names

    def test_unknown_counter(self):
        with pytest.raises(ConfigurationError, match="available"):
            counter_spec("nope")


class TestValidationAndCreate:
    def test_create_builds_counter(self):
        counter = counter_spec("wedge").create()
        assert isinstance(counter, DynamicFourCycleCounter)

    def test_unknown_option_names_option_and_counter(self):
        with pytest.raises(ConfigurationError) as excinfo:
            counter_spec("wedge").create(bogus=1)
        message = str(excinfo.value)
        assert "'bogus'" in message and "'wedge'" in message
        assert "interned" in message  # the valid options are listed

    def test_multiple_unknown_options_all_named(self):
        with pytest.raises(ConfigurationError, match="'alpha'.*'beta'"):
            counter_spec("hhh22").validate_options({"alpha": 1, "beta": 2})

    def test_phase_options_accepted(self):
        counter = counter_spec("phase-fmm").create(phase_length=11)
        assert counter.phase_length == 11
        counter_spec("assadi-shah").validate_options({"phase_length": 11, "eps": 0.01})


class TestRegistration:
    def test_register_spec_overwrite_protection(self):
        spec = CounterSpec(
            name="api-test-counter",
            factory=WedgeCounter,
            description="test spec",
            asymptotic="O(n)",
            supports_batch_hook=True,
            options=(OptionSpec("interned", True), OptionSpec("record_metrics", False)),
        )
        register_spec(spec, overwrite=True)
        assert counter_spec("api-test-counter") is spec
        with pytest.raises(ConfigurationError):
            register_spec(spec)
        register_spec(spec, overwrite=True)

    def test_from_factory_wraps_without_validation(self):
        spec = CounterSpec.from_factory("api-test-factory", WedgeCounter)
        assert spec.options is None
        spec.validate_options({"anything": "goes"})  # no-op, must not raise
        assert spec.option_names() == ()


class TestImportLayering:
    def test_spec_store_lives_below_the_api_package(self):
        """Regression: the registry must not force core modules to import
        repro.api — repro.api.registry is a re-export of repro.core.specs."""
        import repro.api.registry
        import repro.core.specs

        assert repro.api.registry.counter_spec is repro.core.specs.counter_spec

    def test_api_package_imports_standalone(self):
        """Importing repro.api in a fresh interpreter (without repro.core
        having been imported first) must not hit a partial-init cycle."""
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-c", "import repro.api; print(repro.api.available_counter_names())"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr
        assert "assadi-shah" in result.stdout
