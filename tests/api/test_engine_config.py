"""Tests for the typed engine configuration."""

from __future__ import annotations

import pytest

from repro.api import EngineConfig
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_defaults_are_valid(self):
        config = EngineConfig()
        assert config.counter == "assadi-shah"
        assert config.batch_size == 1

    def test_unknown_counter_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown counter"):
            EngineConfig(counter="does-not-exist")

    def test_unknown_option_rejected_at_boundary(self):
        with pytest.raises(ConfigurationError, match=r"'bogus'.*'wedge'"):
            EngineConfig(counter="wedge", options={"bogus": 1})

    def test_reserved_options_must_use_fields(self):
        with pytest.raises(ConfigurationError, match="interned"):
            EngineConfig(counter="wedge", options={"interned": False})
        with pytest.raises(ConfigurationError, match="record_metrics"):
            EngineConfig(counter="wedge", options={"record_metrics": True})

    @pytest.mark.parametrize("batch_size", [0, -3, 1.5, True])
    def test_bad_batch_size_rejected(self, batch_size):
        with pytest.raises(ConfigurationError, match="batch_size"):
            EngineConfig(counter="wedge", batch_size=batch_size)

    def test_counter_specific_options_accepted(self):
        config = EngineConfig(counter="phase-fmm", options={"phase_length": 9})
        assert config.counter_kwargs()["phase_length"] == 9


class TestRoundTrips:
    def test_to_from_dict_round_trip(self):
        config = EngineConfig(
            counter="assadi-shah",
            options={"phase_length": 32},
            batch_size=64,
            interned=False,
            record_metrics=True,
            track_costs=False,
        )
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown engine-config key"):
            EngineConfig.from_dict({"counter": "wedge", "bogus": 1})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ConfigurationError):
            EngineConfig.from_dict([("counter", "wedge")])
        with pytest.raises(ConfigurationError):
            EngineConfig.from_dict({"counter": "wedge", "options": ["phase_length"]})

    def test_from_counter_kwargs_lifts_common_options(self):
        config = EngineConfig.from_counter_kwargs(
            "phase-fmm",
            {"phase_length": 5, "interned": False, "record_metrics": True},
            batch_size=8,
        )
        assert config.interned is False
        assert config.record_metrics is True
        assert config.options == {"phase_length": 5}
        assert config.batch_size == 8

    def test_with_updates(self):
        config = EngineConfig(counter="wedge")
        updated = config.with_updates(batch_size=16)
        assert updated.batch_size == 16
        assert updated.counter == "wedge"
        assert config.batch_size == 1  # original unchanged
