"""Tests for the FourCycleEngine facade: construction, events, snapshots."""

from __future__ import annotations

import pytest

from repro.api import (
    EVENT_BATCH_APPLIED,
    EVENT_CHECKPOINT,
    EVENT_UPDATE_APPLIED,
    EngineConfig,
    EngineSnapshot,
    FourCycleEngine,
    GeneratorSource,
)
from repro.exceptions import ConfigurationError, CounterStateError
from repro.graph.updates import EdgeUpdate, UpdateStream

from tests.conftest import k4_edges, random_dynamic_stream


class TestConstruction:
    def test_from_config(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge", batch_size=4))
        assert engine.name == "wedge"
        assert engine.config.batch_size == 4

    def test_from_counter_name_with_overrides(self):
        engine = FourCycleEngine("hhh22", batch_size=8)
        assert engine.name == "hhh22"
        assert engine.config.batch_size == 8

    def test_defaults(self):
        assert FourCycleEngine().name == "assadi-shah"

    def test_config_overrides_on_config_object(self):
        base = EngineConfig(counter="wedge")
        engine = FourCycleEngine(base, batch_size=16)
        assert engine.config.batch_size == 16

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FourCycleEngine(42)

    def test_track_costs_off_disables_cost_model(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge", track_costs=False))
        engine.insert(1, 2)
        engine.insert(2, 3)
        assert engine.cost.total() == 0
        tracked = FourCycleEngine(EngineConfig(counter="wedge"))
        tracked.insert(1, 2)
        tracked.insert(2, 3)
        assert tracked.cost.total() > 0


class TestUpdates:
    def test_insert_delete_and_stream(self):
        engine = FourCycleEngine(EngineConfig(counter="brute-force"))
        for u, v in k4_edges():
            engine.insert(u, v)
        assert engine.count == 3
        engine.delete(0, 1)
        assert engine.count == 1
        assert engine.is_consistent()

    def test_stream_yields_boundary_counts(self):
        stream = random_dynamic_stream(num_vertices=10, num_updates=60, seed=4)
        per_update = FourCycleEngine(EngineConfig(counter="wedge"))
        expected = [per_update.apply(update) for update in stream]
        batched = FourCycleEngine(EngineConfig(counter="wedge", batch_size=20))
        counts = list(batched.stream(stream))
        assert counts == expected[19::20]

    def test_run_returns_final_count(self):
        stream = UpdateStream.from_edges(k4_edges())
        engine = FourCycleEngine(EngineConfig(counter="wedge", batch_size=3))
        assert engine.run(stream) == 3

    def test_run_on_empty_source_keeps_count(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        engine.insert("a", "b")
        assert engine.run(UpdateStream()) == engine.count


class TestEvents:
    def test_update_and_batch_events(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge", batch_size=3))
        events = []
        engine.subscribe(events.append)
        engine.insert(1, 2)
        engine.apply_batch([EdgeUpdate.insert(2, 3), EdgeUpdate.insert(3, 4)])
        kinds = [event.kind for event in events]
        assert kinds == [EVENT_UPDATE_APPLIED, EVENT_BATCH_APPLIED]
        assert events[1].payload["size"] == 2
        assert events[1].num_edges == 3

    def test_kind_filtering_and_unsubscribe(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        seen = []
        unsubscribe = engine.subscribe(seen.append, kinds=[EVENT_CHECKPOINT])
        engine.insert(1, 2)
        assert seen == []
        engine.checkpoint()
        assert [event.kind for event in seen] == [EVENT_CHECKPOINT]
        unsubscribe()
        engine.checkpoint()
        assert len(seen) == 1

    def test_unknown_kind_rejected(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        with pytest.raises(ConfigurationError, match="unknown event kind"):
            engine.subscribe(lambda event: None, kinds=["nope"])

    def test_raising_subscriber_is_isolated(self):
        """One raising subscriber must not abort the apply path or starve the
        other subscribers — the regression was a single bad callback poisoning
        the engine mid-update for every other consumer."""
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        seen = []

        def bad_subscriber(event):
            raise RuntimeError("observer bug")

        engine.subscribe(bad_subscriber)
        engine.subscribe(seen.append)
        with pytest.warns(RuntimeWarning, match="engine-event-error.*observer bug"):
            count = engine.insert(1, 2)
        assert count == 0
        assert [event.kind for event in seen] == [EVENT_UPDATE_APPLIED]
        # The engine stays healthy and keeps emitting to healthy subscribers.
        with pytest.warns(RuntimeWarning, match="engine-event-error"):
            engine.apply_batch([EdgeUpdate.insert(2, 3), EdgeUpdate.insert(3, 4)])
        assert [event.kind for event in seen] == [EVENT_UPDATE_APPLIED, EVENT_BATCH_APPLIED]
        assert engine.num_edges == 3
        assert engine.is_consistent()

    def test_raising_subscriber_keeps_durable_state_intact(self, tmp_path):
        """With a WAL attached the logged record must stay applied history
        even when a subscriber raises after the update took effect."""
        engine = FourCycleEngine(
            EngineConfig(counter="wedge", wal_path=str(tmp_path / "run.wal"))
        )

        def bad_subscriber(event):
            raise ValueError("late observer failure")

        engine.subscribe(bad_subscriber)
        with pytest.warns(RuntimeWarning, match="engine-event-error"):
            engine.insert(1, 2)
        assert engine.last_durable_seq == 0
        assert engine.num_edges == 1
        engine.close()

    def test_phase_rebuild_events_fire_for_phase_counters(self):
        engine = FourCycleEngine(EngineConfig(counter="phase-fmm", options={"phase_length": 4}))
        rebuilds = []
        engine.subscribe(rebuilds.append, kinds=["phase-rebuild"])
        engine.run(random_dynamic_stream(num_vertices=10, num_updates=60, seed=6))
        assert rebuilds, "expected at least one phase rebuild"
        assert rebuilds[-1].payload["phases_completed"] == engine.counter.phases_completed


class TestSnapshots:
    def test_checkpoint_restore_in_memory(self):
        stream = random_dynamic_stream(num_vertices=12, num_updates=100, seed=8)
        engine = FourCycleEngine(EngineConfig(counter="hhh22", batch_size=10))
        engine.run(stream)
        snapshot = engine.checkpoint()
        restored = FourCycleEngine.restore(snapshot)
        assert restored.count == engine.count
        assert restored.num_edges == engine.num_edges
        assert restored.updates_processed == engine.updates_processed
        assert restored.is_consistent()

    def test_checkpoint_restore_via_file(self, tmp_path):
        path = tmp_path / "engine.json"
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        engine.run(random_dynamic_stream(num_vertices=10, num_updates=80, seed=9))
        engine.checkpoint(path)
        restored = FourCycleEngine.restore(path)
        assert restored.count == engine.count
        assert restored.config == engine.config

    def test_restore_from_dict(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        engine.insert(1, 2)
        payload = engine.checkpoint().to_dict()
        restored = FourCycleEngine.restore(payload)
        assert restored.num_edges == 1

    def test_restore_rejects_corrupted_count(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        for u, v in k4_edges():
            engine.insert(u, v)
        payload = engine.checkpoint().to_dict()
        payload["count"] += 1
        with pytest.raises(CounterStateError, match="does not match"):
            FourCycleEngine.restore(payload)

    def test_restore_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FourCycleEngine.restore(42)
        with pytest.raises(ConfigurationError):
            EngineSnapshot.from_dict({"count": 1})

    def test_snapshot_preserves_isolated_vertices(self):
        engine = FourCycleEngine(EngineConfig(counter="brute-force"))
        engine.graph.add_vertex("isolated")
        engine.insert("a", "b")
        restored = FourCycleEngine.restore(engine.checkpoint())
        assert restored.num_vertices == engine.num_vertices
        assert restored.graph.has_vertex("isolated")

    def test_disk_round_trip_restores_tuple_labels(self, tmp_path):
        """Regression: layer-tagged tuple vertices (TupleFeedSource feeds)
        must survive the JSON checkpoint round-trip."""
        from repro.api import TupleFeedSource
        from repro.db.ivm import TupleUpdate

        feed = TupleFeedSource(
            [TupleUpdate.insert(relation, value, value) for relation in "ABCD" for value in (1, 2)]
        )
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        engine.run(feed)
        path = tmp_path / "tagged.json"
        engine.checkpoint(path)
        restored = FourCycleEngine.restore(path)
        assert restored.count == engine.count
        assert restored.graph.has_vertex(("L1", 1))
        assert restored.apply(
            next(iter(TupleFeedSource([TupleUpdate.delete("A", 1, 1)])))
        ) == engine.apply(next(iter(TupleFeedSource([TupleUpdate.delete("A", 1, 1)]))))

    def test_restore_resets_bookkeeping_noise(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge", record_metrics=True))
        engine.run(random_dynamic_stream(num_vertices=8, num_updates=40, seed=11))
        restored = FourCycleEngine.restore(engine.checkpoint())
        assert restored.cost.total() == 0
        assert restored.metrics is not None and len(restored.metrics) == 0
        assert restored.updates_processed == engine.updates_processed


class TestLoadStateGuard:
    def test_load_state_requires_fresh_counter(self):
        engine = FourCycleEngine(EngineConfig(counter="wedge"))
        engine.insert(1, 2)
        with pytest.raises(CounterStateError, match="freshly constructed"):
            engine.counter.load_state([], [])


class TestGeneratorDrivenRun:
    def test_generator_source_end_to_end(self):
        source = GeneratorSource("hubs", num_vertices=12, num_updates=80, seed=5)
        engine = FourCycleEngine(EngineConfig(counter="assadi-shah", batch_size=16))
        final = engine.run(source)
        assert final == engine.count
        assert engine.is_consistent()
