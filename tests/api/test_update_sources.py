"""Tests for the update-source protocol and its adapters."""

from __future__ import annotations

import pytest

from repro.api import (
    GeneratorSource,
    ReplaySource,
    TupleFeedSource,
    UpdateSource,
    as_update_source,
    iter_windows,
)
from repro.db.ivm import TupleUpdate
from repro.exceptions import ConfigurationError, InvalidUpdateError
from repro.graph.updates import EdgeUpdate, LayeredEdgeUpdate, UpdateStream
from repro.io.serialization import save_stream


class TestProtocol:
    def test_update_stream_is_a_source(self):
        assert isinstance(UpdateStream(), UpdateSource)

    def test_as_update_source_wraps_sequences(self):
        updates = [EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3)]
        source = as_update_source(updates)
        assert list(source) == updates

    def test_as_update_source_rejects_non_iterables(self):
        with pytest.raises(ConfigurationError):
            as_update_source(42)

    def test_iter_windows_chunks_lazily(self):
        updates = [EdgeUpdate.insert(i, i + 1) for i in range(7)]
        windows = list(iter_windows(UpdateStream(updates), 3))
        assert [len(window) for window in windows] == [3, 3, 1]
        assert [update for window in windows for update in window] == updates

    def test_iter_windows_rejects_bad_size(self):
        with pytest.raises(ConfigurationError):
            list(iter_windows(UpdateStream(), 0))


class TestGeneratorSource:
    def test_known_workload_is_reiterable_and_sized(self):
        source = GeneratorSource("erdos-renyi", num_vertices=10, num_updates=50, seed=1)
        first = list(source)
        second = list(source)
        assert first == second
        assert len(source) == 50

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown workload"):
            GeneratorSource("not-a-workload", num_vertices=4, num_updates=4)


class TestReplaySource:
    def test_round_trips_a_saved_stream(self, tmp_path):
        stream = UpdateStream(
            [EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3), EdgeUpdate.delete(1, 2)]
        )
        path = tmp_path / "stream.jsonl"
        save_stream(stream, path)
        source = ReplaySource(path)
        assert list(source) == list(stream)
        assert source.to_stream() == stream  # and it is re-iterable

    def test_bad_line_raises_with_location(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text('{"u": 1, "v": 2, "kind": "insert"}\nnot json\n')
        with pytest.raises(ConfigurationError, match="broken.jsonl:2"):
            list(ReplaySource(path))


class TestTupleFeedSource:
    def test_encodes_the_cyclic_chain_as_tagged_edges(self):
        feed = TupleFeedSource(
            [
                TupleUpdate.insert("A", 1, 2),
                LayeredEdgeUpdate.insert("B", 2, 3),
                TupleUpdate.delete("A", 1, 2),
            ]
        )
        updates = list(feed)
        assert updates[0] == EdgeUpdate.insert(("L1", 1), ("L2", 2))
        assert updates[1] == EdgeUpdate.insert(("L2", 2), ("L3", 3))
        assert updates[2].is_delete
        # D wraps back to L1.
        wrap = next(iter(TupleFeedSource([TupleUpdate.insert("D", 9, 8)])))
        assert wrap == EdgeUpdate.insert(("L4", 9), ("L1", 8))

    def test_custom_relation_names(self):
        feed = TupleFeedSource(
            [TupleUpdate.insert("Orders", "alice", "widget")],
            relations=("Orders", "Parts", "Offers", "Coverage"),
        )
        assert next(iter(feed)) == EdgeUpdate.insert(("L1", "alice"), ("L2", "widget"))

    def test_unknown_relation_rejected(self):
        feed = TupleFeedSource([TupleUpdate.insert("X", 1, 2)])
        with pytest.raises(InvalidUpdateError, match="unknown relation"):
            list(feed)

    def test_chain_shape_validated(self):
        with pytest.raises(ConfigurationError):
            TupleFeedSource([], relations=("A", "B"))
        with pytest.raises(ConfigurationError):
            TupleFeedSource([], relations=("A", "A", "B", "C"))

    def test_closed_chain_produces_one_four_cycle(self):
        from repro.api import EngineConfig, FourCycleEngine

        feed = TupleFeedSource(
            [
                TupleUpdate.insert("A", 1, 1),
                TupleUpdate.insert("B", 1, 1),
                TupleUpdate.insert("C", 1, 1),
                TupleUpdate.insert("D", 1, 1),
            ]
        )
        engine = FourCycleEngine(EngineConfig(counter="brute-force"))
        assert engine.run(feed) == 1
