"""Unit tests for the static counting oracles."""

from __future__ import annotations

import random

import pytest

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.static_counts import (
    count_four_cycles_edge_list,
    count_four_cycles_through_edge,
    count_four_cycles_trace,
    count_four_cycles_wedges,
    count_three_paths,
    count_wedges_between,
    total_wedges,
)

from tests.conftest import complete_bipartite_edges, expected_bipartite_cycles, k4_edges, square_edges


class TestFourCycleCounts:
    def test_empty_graph(self):
        assert count_four_cycles_trace(DynamicGraph()) == 0
        assert count_four_cycles_wedges(DynamicGraph()) == 0

    def test_single_square(self):
        graph = DynamicGraph(edges=square_edges())
        assert count_four_cycles_trace(graph) == 1
        assert count_four_cycles_wedges(graph) == 1

    def test_k4_has_three(self):
        graph = DynamicGraph(edges=k4_edges())
        assert count_four_cycles_trace(graph) == 3
        assert count_four_cycles_wedges(graph) == 3

    def test_triangle_has_none(self):
        graph = DynamicGraph(edges=[(0, 1), (1, 2), (2, 0)])
        assert count_four_cycles_trace(graph) == 0

    def test_path_has_none(self):
        graph = DynamicGraph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        assert count_four_cycles_trace(graph) == 0

    @pytest.mark.parametrize("left,right", [(2, 2), (2, 3), (3, 3), (3, 4), (4, 5)])
    def test_complete_bipartite_closed_form(self, left, right):
        graph = DynamicGraph(edges=complete_bipartite_edges(left, right))
        expected = expected_bipartite_cycles(left, right)
        assert count_four_cycles_trace(graph) == expected
        assert count_four_cycles_wedges(graph) == expected

    def test_trace_matches_wedges_on_random_graphs(self):
        rng = random.Random(11)
        for _ in range(10):
            n = rng.randint(5, 14)
            edges = [
                (i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < 0.4
            ]
            graph = DynamicGraph(vertices=range(n), edges=edges)
            assert count_four_cycles_trace(graph) == count_four_cycles_wedges(graph)

    def test_edge_list_wrapper(self):
        assert count_four_cycles_edge_list(square_edges()) == 1


class TestPathsAndWedges:
    def test_three_paths_square(self):
        graph = DynamicGraph(edges=[("a", "b"), ("b", "c"), ("c", "d")])
        assert count_three_paths(graph, "a", "d") == 1
        assert count_three_paths(graph, "a", "c") == 0

    def test_three_paths_counts_cycles_through_edge(self):
        graph = DynamicGraph(edges=k4_edges())
        graph.delete_edge(0, 1)
        # Re-inserting (0, 1) would close exactly two 4-cycles in K4 minus an edge.
        assert count_four_cycles_through_edge(graph, 0, 1) == 2

    def test_wedges_between(self):
        graph = DynamicGraph(edges=k4_edges())
        assert count_wedges_between(graph, 0, 1) == 2

    def test_total_wedges_star(self):
        star = DynamicGraph(edges=[(0, i) for i in range(1, 5)])
        assert total_wedges(star) == 6

    def test_total_wedges_square(self):
        assert total_wedges(DynamicGraph(edges=square_edges())) == 4
