"""Unit tests for edge-update primitives."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, InvalidUpdateError
from repro.graph.updates import (
    EdgeUpdate,
    LayeredEdgeUpdate,
    UpdateKind,
    UpdateStream,
    normalize_batch,
)


class TestUpdateKind:
    def test_signs(self):
        assert UpdateKind.INSERT.sign == 1
        assert UpdateKind.DELETE.sign == -1

    def test_inverse(self):
        assert UpdateKind.INSERT.inverse() is UpdateKind.DELETE
        assert UpdateKind.DELETE.inverse() is UpdateKind.INSERT


class TestEdgeUpdate:
    def test_canonical_order(self):
        assert EdgeUpdate(2, 1).endpoints == (1, 2)
        assert EdgeUpdate(1, 2) == EdgeUpdate(2, 1)

    def test_canonical_order_strings(self):
        assert EdgeUpdate("b", "a").endpoints == ("a", "b")

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidUpdateError):
            EdgeUpdate(3, 3)

    def test_insert_delete_constructors(self):
        assert EdgeUpdate.insert(1, 2).is_insert
        assert EdgeUpdate.delete(1, 2).is_delete

    def test_inverse(self):
        update = EdgeUpdate.insert(1, 2)
        assert update.inverse() == EdgeUpdate.delete(1, 2)

    def test_sign(self):
        assert EdgeUpdate.insert(1, 2).sign == 1
        assert EdgeUpdate.delete(1, 2).sign == -1

    def test_touches_and_other_endpoint(self):
        update = EdgeUpdate.insert(1, 2)
        assert update.touches(1) and update.touches(2)
        assert not update.touches(3)
        assert update.other_endpoint(1) == 2
        assert update.other_endpoint(2) == 1
        with pytest.raises(InvalidUpdateError):
            update.other_endpoint(3)

    def test_hashable(self):
        assert len({EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 1)}) == 1


class TestLayeredEdgeUpdate:
    def test_relation_validation(self):
        with pytest.raises(InvalidUpdateError):
            LayeredEdgeUpdate("X", 1, 2)

    def test_ordered_pair_preserved(self):
        update = LayeredEdgeUpdate("A", 5, 3)
        assert (update.left, update.right) == (5, 3)

    def test_inverse(self):
        update = LayeredEdgeUpdate.insert("B", 1, 2)
        assert update.inverse() == LayeredEdgeUpdate.delete("B", 1, 2)

    def test_sign(self):
        assert LayeredEdgeUpdate.insert("C", 1, 2).sign == 1
        assert LayeredEdgeUpdate.delete("C", 1, 2).sign == -1


class TestUpdateStream:
    def test_from_edges(self):
        stream = UpdateStream.from_edges([(1, 2), (2, 3)])
        assert len(stream) == 2
        assert all(update.is_insert for update in stream)

    def test_build_then_teardown(self):
        stream = UpdateStream.build_then_teardown([(1, 2), (2, 3)])
        assert len(stream) == 4
        assert stream.final_edges() == set()

    def test_validate_rejects_duplicate_insert(self):
        stream = UpdateStream([EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 1)])
        assert not stream.validate()

    def test_validate_rejects_missing_delete(self):
        stream = UpdateStream([EdgeUpdate.delete(1, 2)])
        assert not stream.validate()

    def test_final_edges(self):
        stream = UpdateStream(
            [EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3), EdgeUpdate.delete(1, 2)]
        )
        assert stream.final_edges() == {(2, 3)}

    def test_final_edges_with_initial(self):
        stream = UpdateStream([EdgeUpdate.delete(1, 2)])
        assert stream.final_edges(initial_edges=[(1, 2)]) == set()

    def test_max_live_edges(self):
        stream = UpdateStream(
            [EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3), EdgeUpdate.delete(1, 2)]
        )
        assert stream.max_live_edges() == 2

    def test_slicing_and_prefix(self):
        stream = UpdateStream.from_edges([(1, 2), (2, 3), (3, 4)])
        assert isinstance(stream[0:2], UpdateStream)
        assert len(stream.prefix(2)) == 2

    def test_insertions_deletions_only(self):
        stream = UpdateStream.build_then_teardown([(1, 2), (2, 3)])
        assert stream.num_insertions() == 2
        assert stream.num_deletions() == 2
        assert len(stream.insertions_only()) == 2
        assert len(stream.deletions_only()) == 2

    def test_vertices(self):
        stream = UpdateStream.from_edges([(1, 2), (3, 4)])
        assert stream.vertices() == {1, 2, 3, 4}

    def test_append_type_checked(self):
        stream = UpdateStream()
        with pytest.raises(InvalidUpdateError):
            stream.append("not an update")  # type: ignore[arg-type]

    def test_extend(self):
        stream = UpdateStream()
        stream.extend([EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 3)])
        assert len(stream) == 2


class TestUpdateBatch:
    def test_normalize_orders_deletions_first(self):
        live = {(1, 2), (2, 3)}
        batch = normalize_batch(
            [EdgeUpdate.insert(3, 4), EdgeUpdate.delete(1, 2)],
            lambda u, v: (u, v) in live,
        )
        assert [update.kind for update in batch] == [UpdateKind.DELETE, UpdateKind.INSERT]
        assert batch.num_deletions == 1
        assert batch.num_insertions == 1
        assert batch.raw_size == 2
        assert batch.cancelled == 0
        assert batch.net_edge_delta() == 0
        assert batch.touched_vertices == {1, 2, 3, 4}

    def test_insert_delete_pair_cancels(self):
        batch = normalize_batch([EdgeUpdate.insert(1, 2), EdgeUpdate.delete(1, 2)])
        assert batch.is_empty
        assert len(batch) == 0
        assert batch.raw_size == 2
        assert batch.cancelled == 2

    def test_delete_insert_pair_on_live_edge_cancels(self):
        batch = normalize_batch(
            [EdgeUpdate.delete(1, 2), EdgeUpdate.insert(1, 2)],
            lambda u, v: True,
        )
        assert batch.is_empty
        assert batch.cancelled == 2

    def test_repeated_toggles_reduce_to_net_update(self):
        updates = [
            EdgeUpdate.insert(1, 2),
            EdgeUpdate.delete(1, 2),
            EdgeUpdate.insert(1, 2),
        ]
        batch = normalize_batch(updates)
        assert len(batch) == 1
        assert batch.insertions[0] == EdgeUpdate.insert(1, 2)
        assert batch.cancelled == 2

    def test_duplicate_insert_rejected_against_snapshot(self):
        with pytest.raises(InvalidUpdateError):
            normalize_batch([EdgeUpdate.insert(1, 2)], lambda u, v: True)

    def test_missing_delete_rejected(self):
        with pytest.raises(InvalidUpdateError):
            normalize_batch([EdgeUpdate.delete(1, 2)])

    def test_duplicate_insert_within_window_rejected(self):
        with pytest.raises(InvalidUpdateError):
            normalize_batch([EdgeUpdate.insert(1, 2), EdgeUpdate.insert(2, 1)])

    def test_non_update_rejected(self):
        with pytest.raises(InvalidUpdateError):
            normalize_batch(["nope"])  # type: ignore[list-item]


class TestStreamBatched:
    def test_windows_cover_stream_in_order(self):
        stream = UpdateStream.from_edges([(1, 2), (2, 3), (3, 4), (4, 5), (5, 6)])
        windows = list(stream.batched(2))
        assert [len(window) for window in windows] == [2, 2, 1]
        recombined = [update for window in windows for update in window]
        assert recombined == list(stream)

    def test_whole_stream_is_one_window(self):
        stream = UpdateStream.from_edges([(1, 2), (2, 3)])
        windows = list(stream.batched(10))
        assert len(windows) == 1
        assert windows[0] == stream

    def test_batch_size_must_be_positive(self):
        stream = UpdateStream.from_edges([(1, 2)])
        with pytest.raises(ConfigurationError):
            list(stream.batched(0))
