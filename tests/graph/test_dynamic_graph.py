"""Unit tests for the dynamic simple graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DuplicateEdgeError, MissingEdgeError, SelfLoopError, UnknownVertexError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.updates import EdgeUpdate, UpdateStream, _canonical_order, normalize_batch

from tests.conftest import k4_edges, square_edges


class TestStructure:
    def test_empty_graph(self):
        graph = DynamicGraph()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_insert_creates_vertices(self):
        graph = DynamicGraph()
        graph.insert_edge(1, 2)
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.has_edge(1, 2) and graph.has_edge(2, 1)

    def test_add_vertex_idempotent(self):
        graph = DynamicGraph()
        graph.add_vertex("x")
        graph.add_vertex("x")
        assert graph.num_vertices == 1
        assert graph.degree("x") == 0

    def test_degree_and_neighbors(self):
        graph = DynamicGraph(edges=square_edges())
        assert graph.degree("a") == 2
        assert graph.neighbors("a") == {"b", "d"}

    def test_strict_degree_unknown_vertex(self):
        graph = DynamicGraph()
        assert graph.degree("nope") == 0
        with pytest.raises(UnknownVertexError):
            graph.degree("nope", strict=True)

    def test_common_neighbors(self):
        graph = DynamicGraph(edges=k4_edges())
        assert graph.common_neighbors(0, 1) == {2, 3}

    def test_edges_reported_once(self):
        graph = DynamicGraph(edges=k4_edges())
        assert len(list(graph.edges())) == 6


class TestUpdates:
    def test_self_loop_rejected(self):
        graph = DynamicGraph()
        with pytest.raises(SelfLoopError):
            graph.insert_edge(1, 1)

    def test_duplicate_insert_rejected(self):
        graph = DynamicGraph(edges=[(1, 2)])
        with pytest.raises(DuplicateEdgeError):
            graph.insert_edge(2, 1)

    def test_missing_delete_rejected(self):
        graph = DynamicGraph()
        with pytest.raises(MissingEdgeError):
            graph.delete_edge(1, 2)

    def test_delete_keeps_vertices(self):
        graph = DynamicGraph(edges=[(1, 2)])
        graph.delete_edge(1, 2)
        assert graph.num_edges == 0
        assert graph.has_vertex(1) and graph.has_vertex(2)

    def test_apply_and_apply_all(self):
        graph = DynamicGraph()
        graph.apply_all(UpdateStream.from_edges(square_edges()))
        assert graph.num_edges == 4
        graph.apply(EdgeUpdate.delete("a", "b"))
        assert graph.num_edges == 3


class TestDerivedViews:
    def test_copy_is_independent(self):
        graph = DynamicGraph(edges=[(1, 2)])
        clone = graph.copy()
        clone.insert_edge(2, 3)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_degree_histogram(self):
        graph = DynamicGraph(edges=square_edges())
        assert graph.degree_histogram() == {2: 4}

    def test_max_degree(self):
        graph = DynamicGraph(edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.max_degree() == 3
        assert DynamicGraph().max_degree() == 0

    def test_h_index(self):
        star = DynamicGraph(edges=[(0, i) for i in range(1, 6)])
        assert star.h_index() == 1
        clique = DynamicGraph(edges=k4_edges())
        assert clique.h_index() == 3

    def test_adjacency_matrix(self):
        graph = DynamicGraph(edges=square_edges())
        matrix, order = graph.adjacency_matrix()
        assert matrix.shape == (4, 4)
        assert np.array_equal(matrix, matrix.T)
        assert matrix.sum() == 8
        assert order == sorted(order)

    def test_adjacency_matrix_custom_order(self):
        graph = DynamicGraph(edges=[(1, 2)])
        matrix, order = graph.adjacency_matrix(order=[2, 1])
        assert order == [2, 1]
        assert matrix[0, 1] == 1

    def test_to_edge_set(self):
        graph = DynamicGraph(edges=[(2, 1)])
        assert graph.to_edge_set() == {(1, 2)}

    def test_contains_and_len(self):
        graph = DynamicGraph(edges=[(1, 2)])
        assert 1 in graph and 3 not in graph
        assert len(graph) == 2


class TestBulkUpdates:
    def test_insert_edges_bulk(self):
        graph = DynamicGraph()
        assert graph.insert_edges(k4_edges()) == 6
        assert graph.num_edges == 6
        assert graph.num_vertices == 4

    def test_insert_edges_duplicate_rejected_midway(self):
        graph = DynamicGraph()
        with pytest.raises(DuplicateEdgeError):
            graph.insert_edges([(1, 2), (2, 3), (2, 1)])
        # Edge count stays consistent with what was actually applied.
        assert graph.num_edges == 2

    def test_insert_edges_self_loop_rejected(self):
        graph = DynamicGraph()
        with pytest.raises(SelfLoopError):
            graph.insert_edges([(1, 1)])

    def test_delete_edges_bulk(self):
        graph = DynamicGraph(edges=k4_edges())
        assert graph.delete_edges([(0, 1), (2, 3)]) == 2
        assert graph.num_edges == 4
        assert not graph.has_edge(0, 1)

    def test_delete_edges_missing_rejected(self):
        graph = DynamicGraph(edges=[(1, 2)])
        with pytest.raises(MissingEdgeError):
            graph.delete_edges([(1, 2), (3, 4)])

    def test_apply_batch_normalizes_and_applies(self):
        graph = DynamicGraph(edges=[(1, 2), (2, 3)])
        batch = graph.apply_batch(
            [
                EdgeUpdate.delete(1, 2),
                EdgeUpdate.insert(3, 4),
                EdgeUpdate.insert(1, 2),
                EdgeUpdate.delete(1, 2),  # net: (1,2) deleted, (3,4) inserted
            ]
        )
        assert graph.to_edge_set() == {(2, 3), (3, 4)}
        assert batch.raw_size == 4
        assert batch.cancelled == 2

    def test_apply_batch_matches_apply_all(self):
        updates = [
            EdgeUpdate.insert(1, 2),
            EdgeUpdate.insert(2, 3),
            EdgeUpdate.insert(1, 3),
            EdgeUpdate.delete(2, 3),
        ]
        sequential = DynamicGraph()
        sequential.apply_all(updates)
        batched = DynamicGraph()
        batched.apply_batch(updates)
        assert batched.to_edge_set() == sequential.to_edge_set()

    def test_apply_batch_accepts_prenormalized_batch(self):
        graph = DynamicGraph()
        batch = normalize_batch([EdgeUpdate.insert(1, 2)])
        graph.apply_batch(batch)
        assert graph.has_edge(1, 2)


class TestDegreeStatisticsFastPaths:
    def test_degree_histogram_counts(self):
        graph = DynamicGraph(edges=[(1, 2), (2, 3), (2, 4)])
        assert graph.degree_histogram() == {1: 3, 3: 1}

    def test_h_index_examples(self):
        assert DynamicGraph().h_index() == 0
        star = DynamicGraph(edges=[(0, i) for i in range(1, 6)])
        assert star.h_index() == 1
        k4 = DynamicGraph(edges=k4_edges())
        assert k4.h_index() == 3

    def test_h_index_matches_sorted_definition(self):
        import random as _random

        rng = _random.Random(9)
        graph = DynamicGraph()
        for _ in range(60):
            u, v = rng.randrange(18), rng.randrange(18)
            if u != v and not graph.has_edge(u, v):
                graph.insert_edge(u, v)
        degrees = sorted((graph.degree(v) for v in graph.vertices()), reverse=True)
        expected = 0
        for position, degree in enumerate(degrees, start=1):
            if degree >= position:
                expected = position
            else:
                break
        assert graph.h_index() == expected

    def test_edges_canonical_with_mixed_labels(self):
        graph = DynamicGraph(edges=[("a", 1), (1, 2)])
        assert set(graph.edges()) == {_canonical_order("a", 1), (1, 2)}


class TestBatchVertexRegistration:
    def test_cancelled_pair_still_registers_vertices(self):
        graph = DynamicGraph()
        graph.apply_batch([EdgeUpdate.insert(5, 6), EdgeUpdate.delete(5, 6)])
        assert graph.num_edges == 0
        assert graph.has_vertex(5) and graph.has_vertex(6)

    def test_batch_vertex_set_matches_sequential_replay(self):
        updates = [
            EdgeUpdate.insert(1, 2),
            EdgeUpdate.insert(3, 4),
            EdgeUpdate.delete(3, 4),
        ]
        sequential = DynamicGraph()
        sequential.apply_all(updates)
        batched = DynamicGraph()
        batched.apply_batch(updates)
        assert set(batched.vertices()) == set(sequential.vertices())
