"""Tests for the degree-class thresholds and the hysteresis classifier."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.graph.degree_classes import (
    ChunkThresholds,
    ClassThresholds,
    EndpointClass,
    HysteresisClassifier,
    MiddleClass,
)


class TestClassThresholds:
    def test_thresholds_are_increasing(self):
        thresholds = ClassThresholds.from_edge_count(m=10_000, eps=0.0098109)
        assert thresholds.tiny_max < thresholds.low_max
        assert thresholds.medium_min < thresholds.medium_max
        assert thresholds.high_min < thresholds.medium_max
        assert thresholds.dense_min < thresholds.sparse_max

    def test_overlap_factor_two(self):
        thresholds = ClassThresholds.from_edge_count(m=10_000, eps=0.01)
        assert thresholds.low_max == pytest.approx(2.0 * thresholds.medium_min)
        assert thresholds.medium_max == pytest.approx(2.0 * thresholds.high_min)
        assert thresholds.sparse_max == pytest.approx(2.0 * thresholds.dense_min)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            ClassThresholds.from_edge_count(m=-1, eps=0.01)
        with pytest.raises(ConfigurationError):
            ClassThresholds.from_edge_count(m=10, eps=0.5)

    def test_admissible_endpoint_classes_cover_all_degrees(self):
        thresholds = ClassThresholds.from_edge_count(m=1_000_000, eps=0.0098109)
        for degree in range(0, 2000, 17):
            assert thresholds.admissible_endpoint_classes(degree)
            assert thresholds.admissible_middle_classes(degree)

    def test_overlap_region_has_two_classes(self):
        thresholds = ClassThresholds.from_edge_count(m=1_000_000, eps=0.01)
        degree_in_overlap = int(1.5 * thresholds.medium_min)
        classes = thresholds.admissible_endpoint_classes(degree_in_overlap)
        assert EndpointClass.LOW in classes and EndpointClass.MEDIUM in classes

    def test_canonical_classes(self):
        thresholds = ClassThresholds.from_edge_count(m=1_000_000, eps=0.01)
        assert thresholds.canonical_endpoint_class(0) is EndpointClass.TINY
        assert thresholds.canonical_endpoint_class(10 ** 9) is EndpointClass.HIGH
        assert thresholds.canonical_middle_class(0) is MiddleClass.TINY
        assert thresholds.canonical_middle_class(10 ** 9) is MiddleClass.DENSE

    def test_zero_edges_allowed(self):
        thresholds = ClassThresholds.from_edge_count(m=0, eps=0.01)
        assert thresholds.admissible_endpoint_classes(0)


class TestChunkThresholds:
    def test_chunk_size_and_density(self):
        chunk = ChunkThresholds.from_edge_count(m=10_000, eps1=0.042, eps2=0.1457)
        assert chunk.chunk_size == pytest.approx(10_000 ** (2 / 3 - 0.042))
        assert chunk.is_chunk_dense(int(chunk.chunk_dense_min) + 1)
        assert not chunk.is_chunk_dense(0)

    def test_negative_m_rejected(self):
        with pytest.raises(ConfigurationError):
            ChunkThresholds.from_edge_count(m=-5, eps1=0.04, eps2=0.1)


class TestHysteresisClassifier:
    def test_first_observation_assigns_class(self):
        thresholds = ClassThresholds.from_edge_count(m=1_000_000, eps=0.01)
        classifier = HysteresisClassifier(thresholds, kind="endpoint")
        transition = classifier.observe("v", 0)
        assert transition is not None
        assert transition[0] is None

    def test_no_transition_within_overlap(self):
        thresholds = ClassThresholds.from_edge_count(m=1_000_000, eps=0.01)
        classifier = HysteresisClassifier(thresholds, kind="endpoint")
        classifier.observe("v", int(thresholds.medium_min) + 1)
        current = classifier.current_class("v")
        # A degree inside the overlap keeps the current class.
        assert classifier.observe("v", int(thresholds.medium_min) - 1) is None or (
            classifier.current_class("v") is current
        )

    def test_transition_moves_one_step(self):
        thresholds = ClassThresholds.from_edge_count(m=1_000_000, eps=0.01)
        classifier = HysteresisClassifier(thresholds, kind="endpoint")
        classifier.observe("v", 0)
        transition = classifier.observe("v", int(thresholds.low_max) + 10)
        assert transition is not None
        assert transition[1] in (EndpointClass.MEDIUM, EndpointClass.LOW)

    def test_middle_kind(self):
        thresholds = ClassThresholds.from_edge_count(m=1_000_000, eps=0.01)
        classifier = HysteresisClassifier(thresholds, kind="middle")
        classifier.observe("x", 0)
        transition = classifier.observe("x", int(thresholds.sparse_max) + 10)
        assert transition is not None
        assert transition[1] is MiddleClass.DENSE

    def test_invalid_kind(self):
        thresholds = ClassThresholds.from_edge_count(m=100, eps=0.01)
        with pytest.raises(ConfigurationError):
            HysteresisClassifier(thresholds, kind="nope")

    def test_vertices_in_class_and_sizes(self):
        thresholds = ClassThresholds.from_edge_count(m=1_000_000, eps=0.01)
        classifier = HysteresisClassifier(thresholds, kind="middle")
        classifier.observe("a", 0)
        classifier.observe("b", 10 ** 9)
        sizes = classifier.class_sizes()
        assert sum(sizes.values()) == 2
        assert "b" in classifier.vertices_in_class(MiddleClass.DENSE)

    def test_drop(self):
        thresholds = ClassThresholds.from_edge_count(m=100, eps=0.01)
        classifier = HysteresisClassifier(thresholds)
        classifier.observe("a", 1)
        classifier.drop("a")
        assert classifier.current_class("a") is None

    def test_set_thresholds_keeps_assignments(self):
        thresholds = ClassThresholds.from_edge_count(m=100, eps=0.01)
        classifier = HysteresisClassifier(thresholds)
        classifier.observe("a", 1)
        before = classifier.current_class("a")
        classifier.set_thresholds(ClassThresholds.from_edge_count(m=100_000, eps=0.01))
        assert classifier.current_class("a") is before
