"""Unit tests for the 4-layered graph."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import DuplicateEdgeError, LayerError, MissingEdgeError
from repro.graph.layered_graph import LayeredGraph
from repro.graph.updates import LayeredEdgeUpdate


def build_single_cycle() -> LayeredGraph:
    """One layered 4-cycle: 1 -A- 2 -B- 3 -C- 4 -D- 1."""
    graph = LayeredGraph()
    graph.insert("A", "v1", "v2")
    graph.insert("B", "v2", "v3")
    graph.insert("C", "v3", "v4")
    graph.insert("D", "v4", "v1")
    return graph


def random_layered_graph(seed: int, n: int = 6, density: float = 0.3) -> LayeredGraph:
    rng = random.Random(seed)
    graph = LayeredGraph()
    for relation in ("A", "B", "C", "D"):
        for left in range(n):
            for right in range(n):
                if rng.random() < density:
                    graph.insert(relation, left, right)
    return graph


class TestStructure:
    def test_empty(self):
        graph = LayeredGraph()
        assert graph.num_edges == 0
        assert graph.count_layered_four_cycles() == 0

    def test_insert_and_membership(self):
        graph = LayeredGraph()
        graph.insert("A", 1, 2)
        assert graph.has_edge("A", 1, 2)
        assert not graph.has_edge("A", 2, 1)
        assert graph.relation_size("A") == 1
        assert graph.num_edges == 1

    def test_duplicate_insert_rejected(self):
        graph = LayeredGraph()
        graph.insert("A", 1, 2)
        with pytest.raises(DuplicateEdgeError):
            graph.insert("A", 1, 2)

    def test_missing_delete_rejected(self):
        with pytest.raises(MissingEdgeError):
            LayeredGraph().delete("B", 1, 2)

    def test_unknown_relation_rejected(self):
        with pytest.raises(LayerError):
            LayeredGraph().insert("E", 1, 2)

    def test_neighbors_both_sides(self):
        graph = LayeredGraph()
        graph.insert("B", "x", "y1")
        graph.insert("B", "x", "y2")
        assert graph.neighbors("B", "x", "left") == {"y1", "y2"}
        assert graph.neighbors("B", "y1", "right") == {"x"}
        with pytest.raises(LayerError):
            graph.neighbors("B", "x", "middle")

    def test_layer_degree_and_classification_degree(self):
        graph = build_single_cycle()
        # v2 in L2 touches A (as right) and B (as left).
        assert graph.layer_degree(2, "v2") == 2
        assert graph.classification_degree(2, "v2") == 2
        # v1 in L1 touches A (left) and D (right) but is classified by A only.
        assert graph.layer_degree(1, "v1") == 2
        assert graph.classification_degree(1, "v1") == 1
        with pytest.raises(LayerError):
            graph.layer_degree(5, "v1")

    def test_layer_vertices(self):
        graph = build_single_cycle()
        assert graph.layer_vertices(1) == {"v1"}
        assert graph.layer_vertices(2) == {"v2"}

    def test_apply_layered_updates(self):
        graph = LayeredGraph()
        graph.apply(LayeredEdgeUpdate.insert("A", 1, 2))
        graph.apply(LayeredEdgeUpdate.delete("A", 1, 2))
        assert graph.num_edges == 0


class TestCounting:
    def test_single_cycle(self):
        graph = build_single_cycle()
        assert graph.count_layered_four_cycles() == 1
        assert graph.count_layered_four_cycles_matrix() == 1

    def test_wedges_and_three_paths(self):
        graph = build_single_cycle()
        assert graph.count_wedges("A", "B", "v1", "v3") == 1
        assert graph.count_three_paths("v1", "v4") == 1
        assert graph.count_three_paths("v1", "missing") == 0

    def test_complete_layered_graph(self):
        graph = LayeredGraph()
        n = 3
        for relation in ("A", "B", "C", "D"):
            for left in range(n):
                for right in range(n):
                    graph.insert(relation, left, right)
        # Every choice of one vertex per layer forms a cycle: n^4 of them.
        assert graph.count_layered_four_cycles() == n ** 4
        assert graph.count_layered_four_cycles_matrix() == n ** 4

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_enumeration_matches_matrix_count(self, seed):
        graph = random_layered_graph(seed)
        assert graph.count_layered_four_cycles() == graph.count_layered_four_cycles_matrix()

    def test_relation_matrix_shapes(self):
        graph = build_single_cycle()
        matrix, left_order, right_order = graph.relation_matrix("A")
        assert matrix.shape == (len(left_order), len(right_order)) == (1, 1)
        assert matrix[0, 0] == 1

    def test_copy_independent(self):
        graph = build_single_cycle()
        clone = graph.copy()
        clone.delete("A", "v1", "v2")
        assert graph.has_edge("A", "v1", "v2")
        assert not clone.has_edge("A", "v1", "v2")
