"""Tests for the optional NetworkX interoperability helpers."""

from __future__ import annotations

import pytest

networkx = pytest.importorskip("networkx")

from repro.api import counter_spec
from repro.exceptions import ConfigurationError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.interop import (
    count_four_cycles_networkx,
    from_networkx,
    stream_from_networkx,
    to_networkx,
)
from repro.graph.static_counts import count_four_cycles_trace


class TestConversions:
    def test_round_trip(self):
        original = networkx.karate_club_graph()
        dynamic = from_networkx(original)
        assert dynamic.num_vertices == original.number_of_nodes()
        assert dynamic.num_edges == original.number_of_edges()
        back = to_networkx(dynamic)
        assert set(back.edges()) == {tuple(sorted(edge)) for edge in original.edges()} or (
            back.number_of_edges() == original.number_of_edges()
        )

    def test_directed_rejected(self):
        with pytest.raises(ConfigurationError):
            from_networkx(networkx.DiGraph([(1, 2)]))

    def test_multigraph_rejected(self):
        with pytest.raises(ConfigurationError):
            from_networkx(networkx.MultiGraph([(1, 2), (1, 2)]))

    def test_self_loop_rejected(self):
        graph = networkx.Graph()
        graph.add_edge(1, 1)
        with pytest.raises(ConfigurationError):
            from_networkx(graph)

    def test_stream_from_networkx(self):
        graph = networkx.cycle_graph(4)
        stream = stream_from_networkx(graph)
        assert len(stream) == 4
        counter = counter_spec("wedge").create()
        counter.apply_all(stream)
        assert counter.count == 1


class TestThirdOpinionCounts:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: networkx.cycle_graph(4), 1),
            (lambda: networkx.complete_graph(4), 3),
            (lambda: networkx.complete_bipartite_graph(3, 4), 3 * 6),
            (lambda: networkx.path_graph(6), 0),
        ],
    )
    def test_known_graphs(self, builder, expected):
        graph = builder()
        assert count_four_cycles_networkx(graph) == expected
        assert count_four_cycles_trace(from_networkx(graph)) == expected

    def test_counters_match_networkx_on_karate_club(self):
        graph = networkx.karate_club_graph()
        expected = count_four_cycles_networkx(graph)
        stream = stream_from_networkx(graph)
        for name in ("wedge", "hhh22", "assadi-shah"):
            counter = counter_spec(name).create()
            counter.apply_all(stream)
            assert counter.count == expected

    def test_random_graphs_match(self):
        for seed in range(3):
            graph = networkx.gnp_random_graph(18, 0.25, seed=seed)
            dynamic = from_networkx(graph)
            assert count_four_cycles_trace(dynamic) == count_four_cycles_networkx(graph)
