"""Tests for the Section 8 general-to-layered reduction."""

from __future__ import annotations

import random

from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.layered_graph import LayeredGraph
from repro.graph.reduction import (
    expand_general_stream,
    expand_general_update,
    expected_layered_cycle_count,
    query_pair,
)
from repro.graph.static_counts import count_closed_four_walks, count_four_cycles_trace
from repro.graph.updates import EdgeUpdate, UpdateKind, UpdateStream

from tests.conftest import k4_edges, random_dynamic_stream


class TestExpansion:
    def test_insertion_order_queries_first(self):
        expanded = expand_general_update(EdgeUpdate.insert(1, 2))
        assert len(expanded) == 8
        assert expanded[0].relation == "D"
        assert expanded[-1].relation == "A"
        assert all(update.kind is UpdateKind.INSERT for update in expanded)

    def test_deletion_order_reversed(self):
        expanded = expand_general_update(EdgeUpdate.delete(1, 2))
        assert expanded[0].relation == "A"
        assert expanded[-1].relation == "D"
        assert all(update.kind is UpdateKind.DELETE for update in expanded)

    def test_both_orientations_present(self):
        expanded = expand_general_update(EdgeUpdate.insert(1, 2))
        a_pairs = {(u.left, u.right) for u in expanded if u.relation == "A"}
        assert a_pairs == {(1, 2), (2, 1)}

    def test_expand_stream_preserves_length(self):
        stream = UpdateStream.from_edges([(1, 2), (2, 3)])
        assert len(list(expand_general_stream(stream))) == 16

    def test_query_pair(self):
        assert query_pair(EdgeUpdate.insert(1, 2)) == (1, 2)


class TestCycleCorrespondence:
    def test_layered_count_equals_closed_walks(self):
        """The reduced layered graph's 4-cycle count equals the general
        graph's closed-4-walk count (every relation is the adjacency matrix)."""
        rng = random.Random(5)
        for _ in range(5):
            n = rng.randint(4, 9)
            edges = [(i, j) for i in range(n) for j in range(i + 1, n) if rng.random() < 0.5]
            general = DynamicGraph(vertices=range(n), edges=edges)
            layered = LayeredGraph()
            for update in expand_general_stream(UpdateStream.from_edges(edges)):
                layered.apply(update)
            assert layered.count_layered_four_cycles() == expected_layered_cycle_count(
                count_closed_four_walks(general)
            )

    def test_reduction_consistent_under_deletions(self):
        stream = random_dynamic_stream(num_vertices=8, num_updates=60, seed=9)
        general = DynamicGraph()
        layered = LayeredGraph()
        for update in stream:
            general.apply(update)
            for layered_update in expand_general_update(update):
                layered.apply(layered_update)
        assert layered.count_layered_four_cycles() == count_closed_four_walks(general)

    def test_k4_correspondence(self):
        """K4 has tr(A^4) = 84 closed 4-walks, which is what the reduced
        layered graph must report; the general count stays 3."""
        layered = LayeredGraph()
        general = DynamicGraph(edges=k4_edges())
        for update in expand_general_stream(UpdateStream.from_edges(k4_edges())):
            layered.apply(update)
        assert count_four_cycles_trace(general) == 3
        assert layered.count_layered_four_cycles() == 84
        assert count_closed_four_walks(general) == 84
