"""Tests for the vertex interner and the interned DynamicGraph fast paths."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.graph.dynamic_graph import DynamicGraph
from repro.graph.interning import VertexInterner

FAST_SETTINGS = settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])

#: Arbitrary hashable labels: ints, strings, and (nested) tuples of both.
label_strategy = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.text(max_size=6),
    st.tuples(st.integers(min_value=0, max_value=9), st.text(max_size=3)),
)


class TestVertexInterner:
    def test_ids_are_contiguous_and_stable(self):
        interner = VertexInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0  # re-interning is idempotent
        assert interner.intern("c") == 2
        assert len(interner) == 3

    def test_label_round_trip(self):
        interner = VertexInterner(["x", (1, 2), 7])
        for label in ("x", (1, 2), 7):
            assert interner.label_of(interner.id_of(label)) == label

    def test_get_id_for_unknown_label(self):
        interner = VertexInterner()
        assert interner.get_id("missing") is None
        with pytest.raises(KeyError):
            interner.id_of("missing")

    def test_labels_in_id_order(self):
        interner = VertexInterner()
        interner.intern_many(["c", "a", "b"])
        assert interner.labels == ["c", "a", "b"]
        assert list(interner) == ["c", "a", "b"]

    def test_copy_is_independent(self):
        interner = VertexInterner(["a"])
        clone = interner.copy()
        clone.intern("b")
        assert "b" in clone and "b" not in interner
        assert interner.get_id("b") is None

    @given(labels=st.lists(label_strategy, max_size=40))
    @FAST_SETTINGS
    def test_round_trips_arbitrary_hashable_labels(self, labels):
        """Interning round-trips every distinct label through its id."""
        interner = VertexInterner()
        ids = interner.intern_many(labels)
        distinct = []
        seen = set()
        for label in labels:
            if label not in seen:
                seen.add(label)
                distinct.append(label)
        assert len(interner) == len(distinct)
        assert interner.labels == distinct
        for label, vid in zip(labels, ids):
            assert interner.label_of(vid) == label
            assert interner.id_of(label) == vid


class TestInternedGraphFastPaths:
    def _pair_graphs(self, edges):
        return (
            DynamicGraph(edges=edges, interned=True),
            DynamicGraph(edges=edges, interned=False),
        )

    def test_is_interned_flag(self):
        assert DynamicGraph().is_interned
        assert not DynamicGraph(interned=False).is_interned
        assert DynamicGraph(interned=False).interner is None

    def test_edges_match_scalar_path(self):
        edges = [(3, 1), (1, 2), (2, 5), (5, 3), (0, 4)]
        interned, scalar = self._pair_graphs(edges)
        assert sorted(interned.edges()) == sorted(scalar.edges())
        assert interned.to_edge_set() == scalar.to_edge_set()

    def test_edges_canonical_orientation_with_string_labels(self):
        graph = DynamicGraph(edges=[("z", "a"), ("m", "b")])
        assert set(graph.edges()) == {("a", "z"), ("b", "m")}

    def test_edges_fall_back_for_non_comparable_labels(self):
        graph = DynamicGraph(edges=[(1, "a"), ("a", (2, 3))])
        assert len(list(graph.edges())) == 2
        assert graph.to_edge_set() == DynamicGraph(
            edges=[(1, "a"), ("a", (2, 3))], interned=False
        ).to_edge_set()

    def test_common_neighbors_matches_scalar(self):
        edges = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (3, 4)]
        interned, scalar = self._pair_graphs(edges)
        for u in range(5):
            for v in range(5):
                assert interned.common_neighbors(u, v) == scalar.common_neighbors(u, v)
        assert interned.common_neighbors(0, "ghost") == set()

    def test_degree_histogram_matches_scalar_with_warm_and_cold_cache(self):
        edges = [(0, 1), (0, 2), (0, 3), (1, 2)]
        interned, scalar = self._pair_graphs(edges)
        expected = scalar.degree_histogram()
        assert interned.degree_histogram() == expected  # cold cache path
        interned.csr_view()
        assert interned.degree_histogram() == expected  # warm cache path

    def test_adjacency_matrix_matches_scalar(self):
        edges = [(2, 0), (0, 1), (1, 2), (2, 3)]
        interned, scalar = self._pair_graphs(edges)
        matrix_i, order_i = interned.adjacency_matrix()
        matrix_s, order_s = scalar.adjacency_matrix()
        assert order_i == order_s
        assert np.array_equal(matrix_i, matrix_s)
        custom = [3, 1]
        matrix_i, _ = interned.adjacency_matrix(order=custom)
        matrix_s, _ = scalar.adjacency_matrix(order=custom)
        assert np.array_equal(matrix_i, matrix_s)

    def test_interned_adjacency_matrix_is_symmetric_and_labelled(self):
        graph = DynamicGraph(edges=[("b", "a"), ("a", "c")])
        matrix, labels = graph.interned_adjacency_matrix()
        assert matrix.shape == (len(labels), len(labels))
        assert np.array_equal(matrix, matrix.T)
        index = {label: i for i, label in enumerate(labels)}
        assert matrix[index["a"], index["b"]] == 1
        assert matrix[index["a"], index["c"]] == 1
        assert matrix[index["b"], index["c"]] == 0

    def test_csr_view_caching_and_invalidation(self):
        graph = DynamicGraph(edges=[(0, 1), (1, 2)])
        indptr_a, indices_a = graph.csr_view()
        indptr_b, indices_b = graph.csr_view()
        assert indptr_a is indptr_b and indices_a is indices_b  # cached
        graph.insert_edge(0, 2)
        indptr_c, indices_c = graph.csr_view()
        assert indptr_c is not indptr_a  # mutation invalidated the cache
        assert int(indptr_c[-1]) == 2 * graph.num_edges
        neighbors = {
            int(v) for v in indices_c[indptr_c[0]:indptr_c[1]]
        }
        assert neighbors == {graph.interner.id_of(1), graph.interner.id_of(2)}

    def test_csr_view_requires_interning(self):
        with pytest.raises(ConfigurationError):
            DynamicGraph(interned=False).csr_view()
        with pytest.raises(ConfigurationError):
            DynamicGraph(interned=False).neighbor_ids(0)

    def test_neighbor_ids(self):
        graph = DynamicGraph(edges=[("a", "b"), ("a", "c")])
        ids = graph.neighbor_ids("a")
        labels = {graph.interner.label_of(i) for i in ids}
        assert labels == {"b", "c"}
        assert graph.neighbor_ids("ghost") == frozenset()

    def test_partial_bulk_update_invalidates_caches(self):
        from repro.exceptions import DuplicateEdgeError, MissingEdgeError

        graph = DynamicGraph(edges=[(1, 2)])
        graph.csr_view()
        with pytest.raises(DuplicateEdgeError):
            graph.insert_edges([(3, 4), (1, 2)])  # (3, 4) lands, then the error
        assert graph.degree_histogram() == {1: 4}
        matrix, _ = graph.adjacency_matrix()
        assert matrix.shape == (4, 4)
        graph.csr_view()
        with pytest.raises(MissingEdgeError):
            graph.delete_edges([(3, 4), (9, 9)])
        assert graph.degree_histogram() == {0: 2, 1: 2}

    def test_copy_preserves_interning_mode_and_independence(self):
        graph = DynamicGraph(edges=[(0, 1)])
        clone = graph.copy()
        assert clone.is_interned
        clone.insert_edge(1, 2)
        assert not graph.has_edge(1, 2)
        assert clone.to_edge_set() == {(0, 1), (1, 2)}
        scalar_clone = DynamicGraph(edges=[(0, 1)], interned=False).copy()
        assert not scalar_clone.is_interned

    @given(
        edges=st.lists(
            st.tuples(st.integers(min_value=0, max_value=9), st.integers(min_value=0, max_value=9)),
            max_size=30,
        )
    )
    @FAST_SETTINGS
    def test_interned_views_always_match_scalar(self, edges):
        interned = DynamicGraph()
        scalar = DynamicGraph(interned=False)
        for u, v in edges:
            if u != v and not interned.has_edge(u, v):
                interned.insert_edge(u, v)
                scalar.insert_edge(u, v)
        assert interned.to_edge_set() == scalar.to_edge_set()
        assert interned.degree_histogram() == scalar.degree_histogram()
        matrix_i, _ = interned.adjacency_matrix()
        matrix_s, _ = scalar.adjacency_matrix()
        assert np.array_equal(matrix_i, matrix_s)
